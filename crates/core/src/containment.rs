//! The OMQ containment decision (`Cont(O₁, O₂)`, §3–§6).
//!
//! ## UCQ-rewritable left-hand sides (exact)
//!
//! For `Q₁` in `{∅, L, NR, S}` we implement the small-witness algorithm of
//! Prop. 10 / Thm. 11, derandomized through the structure of its proof: if
//! `Q₁ ⊄ Q₂` then some disjunct `qᵢ` of a UCQ rewriting of `Q₁`, frozen
//! into the canonical database `D_{qᵢ}` with tuple `c(x̄)`, witnesses
//! non-containment. So
//!
//! ```text
//! Q₁ ⊆ Q₂   ⟺   for every disjunct qᵢ of XRewrite(Q₁):  c(x̄) ∈ Q₂(D_{qᵢ})
//! ```
//!
//! Each right-hand check is one evaluation, dispatched per `Q₂`'s language.
//! This realizes the optimal-complexity algorithms behind Theorems 13
//! (linear: PSPACE), 16 (non-recursive) and 19 (sticky: coNEXPTIME), and
//! the `§6.1` combinations where the LHS is UCQ rewritable.
//!
//! ## Guarded (and other non-rewritable) left-hand sides (anytime)
//!
//! `(G, CQ)` is not UCQ rewritable (witness sizes are unbounded), and
//! `Cont((G,CQ))` is 2EXPTIME-complete (Thm. 20) — any implementation must
//! budget. We run XRewrite with growing budgets: every disjunct the partial
//! rewriting produces is a sound witness candidate (the Prop. 10 argument
//! applies to each disjunct individually), so a failing frozen disjunct
//! *refutes* containment; if the rewriting saturates, the decision is exact
//! in both directions; otherwise the result is [`ContainmentResult::Unknown`]
//! with the budgets spent.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use omq_chase::{runtime, Budget, CompiledUcq, HomStats};
use omq_guarded::{compile_encoding, EncodingArtifact, EncodingConfig};
use omq_model::{ConstId, Cq, Instance, Vocabulary};
use omq_model::{Omq, Ucq};
use omq_rewrite::{DirectRewrite, RewriteSource, XRewriteConfig};

use crate::evaluate::{is_certain_answer, EvalConfig, Trool};
use crate::languages::{detect_language, OmqLanguage};

/// A concrete counterexample to containment: a database over the shared
/// data schema and a tuple that answers `Q₁` but not `Q₂`.
#[derive(Clone, Debug)]
pub struct Witness {
    /// The witnessing database.
    pub database: Instance,
    /// The tuple in `Q₁(D) \ Q₂(D)` (empty for Boolean queries).
    pub tuple: Vec<ConstId>,
}

/// The outcome of a containment check.
#[derive(Clone, Debug)]
pub enum ContainmentResult {
    /// `Q₁ ⊆ Q₂`, with an exact certificate (complete rewriting checked).
    Contained,
    /// `Q₁ ⊄ Q₂`, with a concrete witness (always sound). Boxed: the
    /// witness carries a full `Instance`, which would otherwise dominate
    /// the enum's by-value size.
    NotContained(Box<Witness>),
    /// Budgets were exhausted before a decision; the string explains which.
    Unknown(String),
}

impl ContainmentResult {
    /// Is this a definite `Contained`?
    pub fn is_contained(&self) -> bool {
        matches!(self, ContainmentResult::Contained)
    }

    /// Is this a definite `NotContained`?
    pub fn is_not_contained(&self) -> bool {
        matches!(self, ContainmentResult::NotContained(_))
    }
}

/// Errors for ill-posed containment questions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ContainmentError {
    /// The two OMQs have different answer arities.
    ArityMismatch,
}

impl fmt::Display for ContainmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContainmentError::ArityMismatch => {
                write!(f, "containment requires OMQs of equal answer arity")
            }
        }
    }
}

impl std::error::Error for ContainmentError {}

/// Budgets for the containment check.
#[derive(Clone, Debug)]
pub struct ContainmentConfig {
    /// Rewriting budget for the (exact) UCQ-rewritable path.
    pub rewrite: XRewriteConfig,
    /// Evaluation budgets for the right-hand side checks.
    pub eval: EvalConfig,
    /// Budget ladder for the anytime (guarded) path.
    pub anytime_budgets: Vec<usize>,
    /// When every data-schema predicate is 0-ary (a *propositional*
    /// schema, as in the Thm. 16 reduction) and the schema has at most
    /// this many predicates, decide containment by exhaustively
    /// enumerating all `2^|S|` databases — exact and usually much cheaper
    /// than rewriting. Set to 0 to disable.
    pub max_propositional_schema: usize,
    /// Worker threads for the disjunct sweep and the propositional
    /// enumeration. `0` means "use the machine's available parallelism";
    /// `1` forces the sequential path. The parallel sweep is deterministic:
    /// it reproduces the sequential verdict and witness exactly (the
    /// lowest-index refutation wins).
    pub threads: usize,
    /// Cooperative wall-clock/cancellation budget for the containment
    /// check itself (the disjunct sweep and the propositional enumeration
    /// poll it). Install one budget across *all* nested engines with
    /// [`ContainmentConfig::with_budget`]. Expiry always degrades to
    /// [`ContainmentResult::Unknown`] — never a flipped verdict.
    pub budget: Budget,
    /// A precompiled encoding artifact of the *left-hand side* OMQ (as
    /// produced by `omq_guarded::compile_encoding`). Serving layers supply
    /// their per-key cached artifact here so the anytime ladder reuses the
    /// cached NTA and satisfiability verdict instead of recompiling them;
    /// when `None` and the lhs is guarded, the ladder compiles one itself.
    /// The verdict is identical either way — the artifact is a pure
    /// function of the OMQ.
    pub lhs_encoding: Option<std::sync::Arc<EncodingArtifact>>,
}

impl Default for ContainmentConfig {
    fn default() -> Self {
        ContainmentConfig {
            rewrite: XRewriteConfig::default(),
            eval: EvalConfig::default(),
            anytime_budgets: vec![50, 500, 2_000, 8_000],
            max_propositional_schema: 12,
            threads: 0,
            budget: Budget::unlimited(),
            lhs_encoding: None,
        }
    }
}

impl ContainmentConfig {
    /// Installs `budget` on this config *and* every nested engine config
    /// (rewriting, chase, guarded evaluation), so a single deadline or
    /// cancel token governs the entire check, however deep it recurses.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.rewrite.budget = budget.clone();
        self.eval = self.eval.with_budget(budget.clone());
        self.budget = budget;
        self
    }
}

/// Statistics and result of one containment check.
#[derive(Clone, Debug)]
pub struct ContainmentOutcome {
    /// The verdict.
    pub result: ContainmentResult,
    /// Language detected for the left-hand side.
    pub lhs_language: OmqLanguage,
    /// Language detected for the right-hand side.
    pub rhs_language: OmqLanguage,
    /// Number of frozen disjuncts tested against `Q₂`.
    pub witnesses_checked: usize,
    /// Size (atoms) of the largest disjunct tested — the empirical
    /// counterpart of the `f_O` bounds of Props. 12/14/17.
    pub max_witness_size: usize,
}

/// How the right-hand side is evaluated on each frozen disjunct.
///
/// For UCQ-rewritable `Q₂` (`∅`, `L`, `S`) the rewriting is computed *once*
/// per containment call, compiled into per-disjunct join plans, and every
/// disjunct check becomes a seeded plan execution behind the
/// predicate-signature prefilter — previously each check re-ran the greedy
/// join ordering (and originally the whole rewriting) from scratch.
/// Other languages dispatch through [`is_certain_answer`] per disjunct.
pub(crate) enum RhsChecker {
    /// The (possibly partial) rewriting of `Q₂`, computed and compiled once.
    Rewritten { ucq: CompiledUcq, complete: bool },
    /// Per-disjunct dispatch on `Q₂`'s language (NR, guarded, full, …).
    Direct,
}

/// The verdict of one disjunct check.
pub(crate) enum DisjunctVerdict {
    Pass,
    Refuted,
    Inconclusive(String),
}

impl RhsChecker {
    /// Builds the checker, computing `Q₂`'s rewriting up front when its
    /// language is UCQ-rewritable. `reuse` supplies an already-computed
    /// rewriting of `Q₂` (e.g. the left-hand side's, when `Q₁ == Q₂`);
    /// otherwise the rewriting is obtained through `src` (which may replay
    /// a cached artifact).
    pub(crate) fn build(
        q2: &Omq,
        rhs_language: OmqLanguage,
        reuse: Option<(&Ucq, bool)>,
        voc: &mut Vocabulary,
        cfg: &ContainmentConfig,
        src: &mut dyn RewriteSource,
    ) -> RhsChecker {
        match rhs_language {
            OmqLanguage::Empty | OmqLanguage::Linear | OmqLanguage::Sticky => {
                if let Some((ucq, complete)) = reuse {
                    return RhsChecker::Rewritten {
                        ucq: CompiledUcq::new(ucq),
                        complete,
                    };
                }
                let art = src.rewrite(q2, voc, &cfg.eval.rewrite);
                RhsChecker::Rewritten {
                    ucq: CompiledUcq::new(&art.ucq),
                    complete: art.complete,
                }
            }
            _ => RhsChecker::Direct,
        }
    }

    /// Checks one already-frozen disjunct (canonical database plus frozen
    /// head tuple) against `Q₂`.
    pub(crate) fn check_one(
        &self,
        db: &Instance,
        tuple: &[ConstId],
        q2: &Omq,
        voc: &mut Vocabulary,
        cfg: &ContainmentConfig,
    ) -> DisjunctVerdict {
        let inconclusive = || {
            DisjunctVerdict::Inconclusive(format!(
                "evaluation of the right-hand side on a {}-atom witness was inconclusive",
                db.len()
            ))
        };
        match self {
            RhsChecker::Rewritten { ucq, complete } => {
                if ucq.is_answer(db, tuple, &mut HomStats::default()) {
                    DisjunctVerdict::Pass
                } else if *complete {
                    DisjunctVerdict::Refuted
                } else {
                    // A partial rewriting is sound but incomplete: a miss
                    // proves nothing.
                    inconclusive()
                }
            }
            RhsChecker::Direct => match is_certain_answer(q2, db, tuple, voc, &cfg.eval) {
                Trool::True => DisjunctVerdict::Pass,
                Trool::False => DisjunctVerdict::Refuted,
                Trool::Unknown => inconclusive(),
            },
        }
    }
}

/// Tests the frozen disjuncts of the left-hand rewriting against `q2`.
/// Returns a witness on refutation, `Ok(None)` when all disjuncts pass, or
/// `Err(reason)` when an evaluation was inconclusive.
///
/// With more than one worker the sweep fans the per-disjunct checks across
/// a scoped thread pool. The parallel path is deterministic: the verdict is
/// decided by the *lowest-index* refutation (matching the sequential scan),
/// an `AtomicBool` cancels workers early once a refutation exists, and the
/// winning witness is re-frozen in the caller's vocabulary so its constants
/// are interned exactly as a sequential run would have.
fn check_disjuncts(
    disjuncts: &[Cq],
    rhs: &RhsChecker,
    q2: &Omq,
    voc: &mut Vocabulary,
    cfg: &ContainmentConfig,
    stats: &mut (usize, usize),
) -> Result<Option<Witness>, String> {
    const EXPIRED: &str = "deadline expired during the disjunct sweep";
    let _span = omq_obs::span("contain.sweep");
    let threads = runtime::effective_threads(cfg.threads, disjuncts.len());
    if threads <= 1 {
        let mut inconclusive: Option<String> = None;
        for d in disjuncts {
            // An expired budget leaves the remaining disjuncts unchecked:
            // no `Contained` verdict is possible, only a refutation already
            // found (below) stays definite.
            if cfg.budget.expired() {
                inconclusive.get_or_insert(EXPIRED.into());
                break;
            }
            stats.0 += 1;
            stats.1 = stats.1.max(d.num_atoms());
            let (db, tuple) = d.freeze(voc);
            match rhs.check_one(&db, &tuple, q2, voc, cfg) {
                DisjunctVerdict::Pass => {}
                DisjunctVerdict::Refuted => {
                    // A definite refutation wins even if earlier disjuncts
                    // were inconclusive: the witness is sound on its own.
                    return Ok(Some(Witness {
                        database: db,
                        tuple,
                    }));
                }
                DisjunctVerdict::Inconclusive(reason) => {
                    inconclusive.get_or_insert(reason);
                }
            }
        }
        return match inconclusive {
            Some(reason) => Err(reason),
            None => Ok(None),
        };
    }

    let best_refuted = AtomicUsize::new(usize::MAX);
    let cancel = AtomicBool::new(false);
    let checked = AtomicUsize::new(0);
    let max_size = AtomicUsize::new(0);
    let inconclusive: Mutex<Option<(usize, String)>> = Mutex::new(None);
    let record_inconclusive = |i: usize, reason: String| {
        let mut slot = inconclusive.lock().unwrap();
        if slot.as_ref().is_none_or(|(j, _)| i < *j) {
            *slot = Some((i, reason));
        }
    };
    let seed_voc: &Vocabulary = voc;
    runtime::parallel_indexed(
        threads,
        disjuncts.len(),
        || seed_voc.clone(),
        |wvoc, i| {
            // Early cancel: once some refutation exists, only indices
            // below it can still change the outcome.
            if cancel.load(Ordering::Relaxed) && i > best_refuted.load(Ordering::Relaxed) {
                return;
            }
            // A skipped index must leave a trace, or the final resolution
            // would read an all-pass sweep as `Contained`.
            if cfg.budget.expired() {
                record_inconclusive(i, EXPIRED.into());
                return;
            }
            let d = &disjuncts[i];
            checked.fetch_add(1, Ordering::Relaxed);
            max_size.fetch_max(d.num_atoms(), Ordering::Relaxed);
            let (db, tuple) = d.freeze(wvoc);
            match rhs.check_one(&db, &tuple, q2, wvoc, cfg) {
                DisjunctVerdict::Pass => {}
                DisjunctVerdict::Refuted => {
                    best_refuted.fetch_min(i, Ordering::Relaxed);
                    cancel.store(true, Ordering::Relaxed);
                }
                DisjunctVerdict::Inconclusive(reason) => record_inconclusive(i, reason),
            }
        },
    );
    stats.0 += checked.load(Ordering::Relaxed);
    stats.1 = stats.1.max(max_size.load(Ordering::Relaxed));

    let best = best_refuted.load(Ordering::Relaxed);
    if best != usize::MAX {
        // Replay the freezes up to the winner in the caller's vocabulary:
        // constants are interned in the same order as a sequential run, so
        // the witness is bit-for-bit identical.
        let mut witness = None;
        for d in &disjuncts[..=best] {
            witness = Some(d.freeze(voc));
        }
        let (database, tuple) = witness.expect("non-empty prefix");
        return Ok(Some(Witness { database, tuple }));
    }
    match inconclusive.into_inner().unwrap() {
        Some((_, reason)) => Err(reason),
        None => Ok(None),
    }
}

/// Decides `Q₁ ⊆ Q₂` for OMQs over a shared data schema.
///
/// See the module docs for the exactness guarantees per language pair.
pub fn contains(
    q1: &Omq,
    q2: &Omq,
    voc: &mut Vocabulary,
    cfg: &ContainmentConfig,
) -> Result<ContainmentOutcome, ContainmentError> {
    contains_with(q1, q2, voc, cfg, &mut DirectRewrite)
}

/// [`contains`], with the rewritings drawn from `src` (a cache, a replay
/// log, …) instead of computed from scratch. The source contract (see
/// `omq_rewrite::source`) guarantees identical verdicts and witnesses.
pub fn contains_with(
    q1: &Omq,
    q2: &Omq,
    voc: &mut Vocabulary,
    cfg: &ContainmentConfig,
    src: &mut dyn RewriteSource,
) -> Result<ContainmentOutcome, ContainmentError> {
    if q1.arity() != q2.arity() {
        return Err(ContainmentError::ArityMismatch);
    }
    let _span = omq_obs::span("contain");
    let lhs_language = detect_language(q1);
    // Self-containment (the equivalence check `Q ⊑ Q`) is common enough to
    // skip re-detecting the identical right-hand side.
    let rhs_language = if q1 == q2 {
        lhs_language
    } else {
        detect_language(q2)
    };
    let mut stats = (0usize, 0usize);

    if let Some(result) =
        propositional_enumeration(q1, q2, (lhs_language, rhs_language), voc, cfg, &mut stats)
    {
        return Ok(ContainmentOutcome {
            result,
            lhs_language,
            rhs_language,
            witnesses_checked: stats.0,
            max_witness_size: stats.1,
        });
    }

    let result = if lhs_language.is_ucq_rewritable() {
        // `complete == false` should not happen for genuinely rewritable
        // classes, but budgets are budgets: a partial rewriting still
        // supports sound refutation.
        let lhs = src.rewrite(q1, voc, &cfg.rewrite);
        let (lhs_ucq, lhs_complete) = (lhs.ucq, lhs.complete);
        // When both sides are the same OMQ (self-containment, the inner
        // half of every equivalence check) the left rewriting *is* the
        // right one: reuse it instead of rewriting again.
        let reuse = (lhs_complete && q1 == q2).then_some((&lhs_ucq, true));
        let rhs = RhsChecker::build(q2, rhs_language, reuse, voc, cfg, src);
        match check_disjuncts(&lhs_ucq.disjuncts, &rhs, q2, voc, cfg, &mut stats) {
            Ok(Some(w)) => ContainmentResult::NotContained(Box::new(w)),
            Ok(None) if lhs_complete => ContainmentResult::Contained,
            Ok(None) => ContainmentResult::Unknown(
                "rewriting budget exceeded on a UCQ-rewritable input".into(),
            ),
            Err(reason) => ContainmentResult::Unknown(reason),
        }
    } else {
        anytime_guarded(
            q1,
            q2,
            lhs_language,
            rhs_language,
            voc,
            cfg,
            src,
            &mut stats,
        )
    };

    omq_obs::counters(&[
        ("contain.witnesses_checked", stats.0 as u64),
        ("contain.checks", 1),
    ]);
    Ok(ContainmentOutcome {
        result,
        lhs_language,
        rhs_language,
        witnesses_checked: stats.0,
        max_witness_size: stats.1,
    })
}

/// Exhaustive decision for *propositional* data schemas (all predicates
/// 0-ary): the `S`-databases are exactly the subsets of the `|S|` facts, so
/// containment is decided by checking `Q₁(D) ⊆ Q₂(D)` on each of the
/// `2^|S|` databases. Exact whenever both evaluations carry a completeness
/// guarantee; returns `None` (falling back to the general algorithms) when
/// the schema is not propositional, too large, or an evaluation was
/// inconclusive.
fn propositional_enumeration(
    q1: &Omq,
    q2: &Omq,
    langs: (OmqLanguage, OmqLanguage),
    voc: &mut Vocabulary,
    cfg: &ContainmentConfig,
    stats: &mut (usize, usize),
) -> Option<ContainmentResult> {
    let preds = q1.data_schema.preds();
    if cfg.max_propositional_schema == 0
        || preds.len() > cfg.max_propositional_schema
        || preds.iter().any(|&p| voc.arity(p) != 0)
    {
        return None;
    }

    if let Some(result) = propositional_bitset(q1, q2, voc, cfg, stats) {
        return Some(result);
    }

    /// What checking one mask concluded (beyond "Q₁(D) ⊆ Q₂(D) here").
    enum MaskEvent {
        /// An evaluation lacked a completeness guarantee: fall back to the
        /// general algorithms.
        Fallback,
        /// A tuple in `Q₁(D) \ Q₂(D)`: non-containment.
        Counterexample(Box<Witness>),
    }

    let mask_db = |mask: u64| {
        Instance::from_atoms(
            preds
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, &p)| omq_model::Atom::new(p, vec![])),
        )
    };
    // Checks one database; all-propositional schemas make the witness
    // tuple-free of interning concerns (0-ary atoms, Boolean queries), so
    // workers can build complete witnesses in their own vocabulary clones.
    // `min()` (rather than an arbitrary set-iteration pick) keeps the
    // chosen tuple deterministic. The languages are hoisted out of the
    // sweep (`langs`), and `Q₂(D)` is only evaluated when an exact
    // `Q₁(D)` is non-empty — an empty left side can't witness anything
    // regardless of the right side. The second bool reports "`Q₂(D)` was
    // evaluated exactly true" for the monotone pruning below.
    // Relaxation pruners for the generic sweep. [`HornMode::Over`] bounds
    // the real chase's 0-ary consequences from above: if even the relaxed
    // Q₁ cannot hold at a mask then Q₁(D) = ∅ there — exactly, regardless
    // of what budget the real evaluation would have hit — so the mask
    // cannot be a counterexample and needs no evaluation. [`HornMode::
    // Under`] certifies a Boolean Q₂ true from its fully-propositional
    // rules alone, which also settles the mask. Either test costs
    // nanoseconds against the microseconds of a chase.
    let over1 = compile_horn(q1, voc, preds, HornMode::Over);
    let under2 = (q2.arity() == 0)
        .then(|| compile_horn(q2, voc, preds, HornMode::Under))
        .flatten();

    let check_mask = |mask: u64, voc: &mut Vocabulary| -> (Option<MaskEvent>, bool) {
        use crate::evaluate::{evaluate_in_language, EvalGuarantee::SoundLowerBound};
        if let Some(p) = &over1 {
            if !p.holds(p.closure(mask)) {
                omq_obs::counter("contain.masks_pruned", 1);
                return (None, false);
            }
        }
        if let Some(p) = &under2 {
            if p.holds(p.closure(mask)) {
                omq_obs::counter("contain.masks_pruned", 1);
                return (None, true);
            }
        }
        let db = mask_db(mask);
        let a1 = evaluate_in_language(q1, &db, voc, &cfg.eval, &mut DirectRewrite, langs.0);
        if a1.guarantee == SoundLowerBound {
            return (Some(MaskEvent::Fallback), false);
        }
        if a1.answers.is_empty() {
            return (None, false);
        }
        let a2 = evaluate_in_language(q2, &db, voc, &cfg.eval, &mut DirectRewrite, langs.1);
        if a2.guarantee == SoundLowerBound {
            return (Some(MaskEvent::Fallback), false);
        }
        let q2_true = !a2.answers.is_empty();
        let event = a1.answers.difference(&a2.answers).min().map(|tuple| {
            MaskEvent::Counterexample(Box::new(Witness {
                database: db,
                tuple: tuple.clone(),
            }))
        });
        (event, q2_true)
    };

    let n_masks = 1usize << preds.len();
    let threads = runtime::effective_threads(cfg.threads, n_masks);
    if threads <= 1 {
        // Boolean certain answers are monotone in the database: once
        // `Q₂(D)` is (exactly) true at some mask, it is true at every
        // superset mask, which therefore cannot be a counterexample and
        // needs no evaluation at all. (For non-Boolean queries both answer
        // sets grow, so nothing transfers.)
        let boolean = q1.arity() == 0;
        let mut q2_true_at: Vec<u64> = Vec::new();
        for mask in 0..n_masks as u64 {
            // Expired budget: fall through to the general algorithms, which
            // poll the same budget and degrade to `Unknown` immediately.
            if cfg.budget.expired() {
                return None;
            }
            stats.0 += 1;
            stats.1 = stats.1.max(mask.count_ones() as usize);
            if boolean && q2_true_at.iter().any(|&t| t & !mask == 0) {
                continue;
            }
            match check_mask(mask, voc) {
                (Some(MaskEvent::Fallback), _) => return None,
                (Some(MaskEvent::Counterexample(w)), _) => {
                    return Some(ContainmentResult::NotContained(w))
                }
                (None, q2_true) => {
                    if boolean && q2_true {
                        q2_true_at.push(mask);
                    }
                }
            }
        }
        return Some(ContainmentResult::Contained);
    }

    // Parallel sweep with sequential semantics: the event at the *lowest*
    // mask decides, exactly as the in-order scan would; an `AtomicBool`
    // cancels masks that can no longer matter.
    let best_mask = AtomicUsize::new(usize::MAX);
    let cancel = AtomicBool::new(false);
    let checked = AtomicUsize::new(0);
    let max_size = AtomicUsize::new(0);
    let best_event: Mutex<Option<(usize, MaskEvent)>> = Mutex::new(None);
    let record = |m: usize, event: MaskEvent| {
        let mut slot = best_event.lock().unwrap();
        if slot.as_ref().is_none_or(|(j, _)| m < *j) {
            *slot = Some((m, event));
        }
    };
    let seed_voc: &Vocabulary = voc;
    runtime::parallel_indexed(
        threads,
        n_masks,
        || seed_voc.clone(),
        |wvoc, m| {
            if cancel.load(Ordering::Relaxed) && m > best_mask.load(Ordering::Relaxed) {
                return;
            }
            // A skipped mask leaves the sweep undecidable here: record a
            // fallback event so the caller routes to the budget-aware
            // general path instead of concluding `Contained`.
            if cfg.budget.expired() {
                best_mask.fetch_min(m, Ordering::Relaxed);
                cancel.store(true, Ordering::Relaxed);
                record(m, MaskEvent::Fallback);
                return;
            }
            checked.fetch_add(1, Ordering::Relaxed);
            max_size.fetch_max((m as u64).count_ones() as usize, Ordering::Relaxed);
            if let (Some(event), _) = check_mask(m as u64, wvoc) {
                best_mask.fetch_min(m, Ordering::Relaxed);
                cancel.store(true, Ordering::Relaxed);
                record(m, event);
            }
        },
    );
    stats.0 += checked.load(Ordering::Relaxed);
    stats.1 = stats.1.max(max_size.load(Ordering::Relaxed));
    match best_event.into_inner().unwrap() {
        Some((_, MaskEvent::Fallback)) => None,
        Some((_, MaskEvent::Counterexample(w))) => Some(ContainmentResult::NotContained(w)),
        None => Some(ContainmentResult::Contained),
    }
}

/// One OMQ compiled to Horn-bitmask form: a propositional tgd is a rule
/// `state ⊇ body ⟹ state ∪= head`, a Boolean UCQ over 0-ary atoms is a
/// disjunction of required-fact masks.
struct HornProgram {
    rules: Vec<(u64, u64)>,
    disjuncts: Vec<u64>,
}

impl HornProgram {
    /// The least model of `rules` above `db`, as a bitmask. Terminates in at
    /// most 64 sweeps (each sweep that changes anything sets a new bit), so
    /// this is the exact propositional chase.
    fn closure(&self, db: u64) -> u64 {
        let mut state = db;
        loop {
            let mut next = state;
            for &(body, head) in &self.rules {
                if next & body == body {
                    next |= head;
                }
            }
            if next == state {
                return state;
            }
            state = next;
        }
    }

    /// Does the query hold in the (closed) state? (Some disjunct's required
    /// facts are a subset of the state: `d \ state = ∅`.)
    fn holds(&self, state: u64) -> bool {
        self.disjuncts.iter().any(|&d| d & !state == 0)
    }
}

/// How [`compile_horn`] treats predicates of non-zero arity.
#[derive(Copy, Clone, PartialEq, Eq)]
enum HornMode {
    /// Refuse to compile: the program is only usable when the OMQ is fully
    /// propositional, and then its verdicts are exact.
    Exact,
    /// Over-approximate: non-propositional body/query atoms are treated as
    /// satisfiable (dropped from the required mask), non-propositional head
    /// atoms are ignored. The closure then *bounds the real chase's 0-ary
    /// consequences from above*, and `holds` is a necessary condition for
    /// the real query to have any answer.
    Over,
    /// Under-approximate: rules with a non-propositional body atom and
    /// disjuncts with a non-propositional atom are dropped entirely. The
    /// closure only contains certainly-derived 0-ary facts, and `holds` is
    /// a sufficient condition for the (Boolean) query to be true.
    Under,
}

/// Compiles one OMQ to a [`HornProgram`] over the shared bit assignment:
/// data-schema predicates take bits `0..|S|` (so a database mask *is* its
/// enumeration mask), 0-ary intensional predicates take the bits above.
/// `None` when more than 64 propositional predicates occur, or — in
/// [`HornMode::Exact`] — when any mentioned predicate has non-zero arity.
fn compile_horn(
    q: &Omq,
    voc: &Vocabulary,
    preds: &[omq_model::PredId],
    mode: HornMode,
) -> Option<HornProgram> {
    struct BitAlloc<'a> {
        voc: &'a Vocabulary,
        mode: HornMode,
        bits: std::collections::HashMap<omq_model::PredId, u32>,
        next_bit: u32,
    }
    impl BitAlloc<'_> {
        /// `Ok(None)` = "atom abstracted away", `Err(())` = "cannot compile".
        fn bit_of(&mut self, p: omq_model::PredId) -> Result<Option<u32>, ()> {
            if self.voc.arity(p) != 0 {
                return match self.mode {
                    HornMode::Over => Ok(None),
                    HornMode::Exact | HornMode::Under => Err(()),
                };
            }
            if let Some(&b) = self.bits.get(&p) {
                return Ok(Some(b));
            }
            if self.next_bit >= 64 {
                return Err(());
            }
            self.bits.insert(p, self.next_bit);
            self.next_bit += 1;
            Ok(Some(self.next_bit - 1))
        }
        fn atoms_mask(&mut self, atoms: &[omq_model::Atom]) -> Result<u64, ()> {
            let mut m = 0u64;
            for a in atoms {
                if let Some(b) = self.bit_of(a.pred)? {
                    m |= 1u64 << b;
                }
            }
            Ok(m)
        }
    }

    let mut alloc = BitAlloc {
        voc,
        mode,
        bits: preds
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i as u32))
            .collect(),
        next_bit: preds.len() as u32,
    };
    let mut rules = Vec::with_capacity(q.sigma.len());
    for t in &q.sigma {
        let body = match alloc.atoms_mask(&t.body) {
            Ok(b) => b,
            // `Under`: a rule whose body we cannot certify is simply
            // dropped (weakening the closure is sound); any other failure
            // aborts compilation.
            Err(()) if mode == HornMode::Under => continue,
            Err(()) => return None,
        };
        // Head atoms of non-zero arity are ignored in both relaxations: in
        // `Over` nothing 0-ary is lost, in `Under` only 0-ary facts are
        // tracked (they are certainly derived once the all-0-ary body is).
        let head = match alloc.atoms_mask(&t.head) {
            Ok(h) => h,
            Err(()) if mode != HornMode::Exact => {
                let mut h = 0u64;
                for a in &t.head {
                    if let Ok(Some(b)) = alloc.bit_of(a.pred) {
                        h |= 1u64 << b;
                    }
                }
                h
            }
            Err(()) => return None,
        };
        rules.push((body, head));
    }
    let mut disjuncts = Vec::with_capacity(q.query.disjuncts.len());
    for cq in &q.query.disjuncts {
        match alloc.atoms_mask(&cq.body) {
            Ok(d) => disjuncts.push(d),
            // `Under`: a disjunct we cannot certify never fires `holds`.
            Err(()) if mode == HornMode::Under => {}
            Err(()) => return None,
        }
    }
    Some(HornProgram { rules, disjuncts })
}

/// Fully-propositional fast path for [`propositional_enumeration`]: when
/// *every* predicate either OMQ mentions (data schema, ontology, query) is
/// 0-ary and at most 64 predicates occur, each database is a `u64`, each
/// tgd is a Horn implication between masks, and certain answers are a
/// bitmask closure — the per-mask chase/rewriting machinery is bypassed
/// entirely. The scan order, lowest-mask winner, witness shape, and stats
/// accounting match the sequential generic sweep exactly; `None` falls back
/// to it (non-propositional ontology predicates, bit-space overflow, or an
/// expired budget — the callers poll the same budget and degrade
/// identically).
fn propositional_bitset(
    q1: &Omq,
    q2: &Omq,
    voc: &Vocabulary,
    cfg: &ContainmentConfig,
    stats: &mut (usize, usize),
) -> Option<ContainmentResult> {
    let preds = q1.data_schema.preds();
    // Boolean queries only: with 0-ary atoms throughout, a safe query head
    // cannot bind variables anyway, so this only rejects ill-formed input.
    if q1.arity() != 0 || q2.arity() != 0 {
        return None;
    }
    let p1 = compile_horn(q1, voc, preds, HornMode::Exact)?;
    let p2 = compile_horn(q2, voc, preds, HornMode::Exact)?;
    omq_obs::counter("contain.prop_bitset", 1);

    let mask_db = |mask: u64| {
        Instance::from_atoms(
            preds
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, &p)| omq_model::Atom::new(p, vec![])),
        )
    };

    let n_masks = 1u64 << preds.len();
    for mask in 0..n_masks {
        // Budget polling is coarser than the generic sweep's because a mask
        // costs nanoseconds here; expiry still routes to the same fallback.
        if mask & 0xFF == 0 && cfg.budget.expired() {
            return None;
        }
        stats.0 += 1;
        stats.1 = stats.1.max(mask.count_ones() as usize);
        if p1.holds(p1.closure(mask)) && !p2.holds(p2.closure(mask)) {
            return Some(ContainmentResult::NotContained(Box::new(Witness {
                database: mask_db(mask),
                tuple: Vec::new(),
            })));
        }
    }
    Some(ContainmentResult::Contained)
}

/// The anytime path for non-UCQ-rewritable left-hand sides.
///
/// For a guarded lhs the ladder first consults the lhs encoding artifact —
/// the one [`ContainmentConfig::lhs_encoding`] supplies (a serving layer's
/// cache), or a freshly compiled one otherwise. An artifact certifying
/// `critical_satisfiable == Some(false)` decides the question outright:
/// an unsatisfiable `Q₁` is contained in everything (and the ladder could
/// never refute such a containment anyway — every rewriting disjunct is a
/// sound witness candidate *for an answer of `Q₁`*, of which there are
/// none). The check runs on a vocabulary clone so cache state (supplied vs.
/// compiled) can never move the interning order of the main run.
#[allow(clippy::too_many_arguments)]
fn anytime_guarded(
    q1: &Omq,
    q2: &Omq,
    lhs_language: OmqLanguage,
    rhs_language: OmqLanguage,
    voc: &mut Vocabulary,
    cfg: &ContainmentConfig,
    src: &mut dyn RewriteSource,
    stats: &mut (usize, usize),
) -> ContainmentResult {
    if lhs_language == OmqLanguage::Guarded {
        let supplied = cfg.lhs_encoding.clone();
        let compiled;
        let art: Option<&EncodingArtifact> = match &supplied {
            Some(a) => Some(a),
            None => {
                let ecfg = EncodingConfig {
                    budget: cfg.budget.clone(),
                    ..EncodingConfig::default()
                };
                compiled = compile_encoding(q1, &mut voc.clone(), &ecfg);
                compiled.as_ref()
            }
        };
        if art.is_some_and(|a| a.critical_satisfiable == Some(false)) {
            omq_obs::counter("contain.unsat_lhs_short_circuit", 1);
            return ContainmentResult::Contained;
        }
    }
    let rhs = RhsChecker::build(q2, rhs_language, None, voc, cfg, src);
    let mut tested = 0usize;
    for &budget in &cfg.anytime_budgets {
        if cfg.budget.expired() {
            return ContainmentResult::Unknown(
                "deadline expired during the anytime budget ladder".into(),
            );
        }
        let rw_cfg = XRewriteConfig {
            max_queries: budget,
            // The `skip(tested)` ladder below relies on the disjunct list of
            // a smaller budget being a prefix of a larger budget's list,
            // which holds for truncated raw output but not after
            // subsumption pruning (a later disjunct can evict an earlier
            // one). Witness search needs every sound disjunct anyway.
            prune_subsumed: false,
            ..cfg.rewrite.clone()
        };
        let art = src.rewrite(q1, voc, &rw_cfg);
        let (ucq, complete) = (art.ucq, art.complete);
        // Only test disjuncts not covered in earlier (smaller) rounds.
        let fresh: Vec<Cq> = ucq.disjuncts.iter().skip(tested).cloned().collect();
        tested = ucq.disjuncts.len().max(tested);
        match check_disjuncts(&fresh, &rhs, q2, voc, cfg, stats) {
            Ok(Some(w)) => return ContainmentResult::NotContained(Box::new(w)),
            Ok(None) => {
                if complete {
                    return ContainmentResult::Contained;
                }
            }
            Err(reason) => return ContainmentResult::Unknown(reason),
        }
    }
    ContainmentResult::Unknown(format!(
        "anytime rewriting budgets exhausted ({} disjuncts refuted nothing); \
         the guarded containment problem is 2EXPTIME-complete — raise \
         `anytime_budgets` to search further",
        tested
    ))
}

/// Mutual containment.
pub fn equivalent(
    q1: &Omq,
    q2: &Omq,
    voc: &mut Vocabulary,
    cfg: &ContainmentConfig,
) -> Result<(ContainmentOutcome, ContainmentOutcome), ContainmentError> {
    equivalent_with(q1, q2, voc, cfg, &mut DirectRewrite)
}

/// Mutual containment through a [`RewriteSource`]: the second direction
/// reuses whatever the first one put in the source's cache.
pub fn equivalent_with(
    q1: &Omq,
    q2: &Omq,
    voc: &mut Vocabulary,
    cfg: &ContainmentConfig,
    src: &mut dyn RewriteSource,
) -> Result<(ContainmentOutcome, ContainmentOutcome), ContainmentError> {
    // `lhs_encoding` describes `q1` only; the backward direction's lhs is
    // `q2`, so it must not inherit the artifact.
    let back_cfg = ContainmentConfig {
        lhs_encoding: None,
        ..cfg.clone()
    };
    Ok((
        contains_with(q1, q2, voc, cfg, src)?,
        contains_with(q2, q1, voc, &back_cfg, src)?,
    ))
}

/// Convenience: containment of a plain (U)CQ in a plain (U)CQ over the same
/// schema, as OMQs with empty ontologies (classical Chandra–Merlin /
/// Sagiv–Yannakakis, the `O_∅` baseline of §3.1).
pub fn ucq_contains(
    q1: &Ucq,
    q2: &Ucq,
    schema: &omq_model::Schema,
    voc: &mut Vocabulary,
    cfg: &ContainmentConfig,
) -> Result<ContainmentOutcome, ContainmentError> {
    let o1 = Omq::new(schema.clone(), vec![], q1.clone());
    let o2 = Omq::new(schema.clone(), vec![], q2.clone());
    contains(&o1, &o2, voc, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_model::{parse_program, Schema};

    fn setup(text: &str, data: &[&str], n1: &str, n2: &str) -> (Omq, Omq, Vocabulary) {
        let prog = parse_program(text).unwrap();
        let voc = prog.voc.clone();
        let schema = Schema::from_preds(data.iter().map(|n| voc.pred_id(n).unwrap()));
        let q1 = Omq::new(
            schema.clone(),
            prog.tgds.clone(),
            prog.query(n1).unwrap().clone(),
        );
        let q2 = Omq::new(schema, prog.tgds.clone(), prog.query(n2).unwrap().clone());
        (q1, q2, voc)
    }

    #[test]
    fn plain_cq_containment() {
        // path2 ⊆ path1, not conversely.
        let (q1, q2, mut voc) = setup("p2 :- E(X,Y), E(Y,Z)\np1 :- E(U,V)\n", &["E"], "p2", "p1");
        let cfg = ContainmentConfig::default();
        let out = contains(&q1, &q2, &mut voc, &cfg).unwrap();
        assert!(out.result.is_contained());
        assert_eq!(out.lhs_language, OmqLanguage::Empty);
        let back = contains(&q2, &q1, &mut voc, &cfg).unwrap();
        match back.result {
            ContainmentResult::NotContained(w) => {
                assert_eq!(w.database.len(), 1); // the frozen single edge
                assert!(w.tuple.is_empty());
            }
            other => panic!("expected a witness, got {other:?}"),
        }
    }

    /// The ontology makes a containment hold that fails without it.
    #[test]
    fn ontology_enables_containment() {
        // With T(x) → P(x): answering P subsumes answering T.
        let (q1, q2, mut voc) = setup(
            "T(X) -> P(X)\n\
             qt(X) :- T(X)\n\
             qp(X) :- P(X)\n",
            &["P", "T"],
            "qt",
            "qp",
        );
        let cfg = ContainmentConfig::default();
        assert!(contains(&q1, &q2, &mut voc, &cfg)
            .unwrap()
            .result
            .is_contained());
        // Without help in the other direction: P(a) does not make T true.
        assert!(contains(&q2, &q1, &mut voc, &cfg)
            .unwrap()
            .result
            .is_not_contained());
    }

    /// Example 1 of the paper as a containment statement: the rewriting of
    /// q(x) :- R(x,y), P(y) is P(x) ∨ T(x), so Q1 is contained in the OMQ
    /// asking P(x) ∨ T(x) directly and vice versa.
    #[test]
    fn paper_example_equivalence() {
        let (q1, q2, mut voc) = setup(
            "P(X) -> exists Y . R(X,Y)\n\
             R(X,Y) -> P(Y)\n\
             T(X) -> P(X)\n\
             q(X) :- R(X,Y), P(Y)\n\
             r(X) :- P(X)\n\
             r(X) :- T(X)\n",
            &["P", "T"],
            "q",
            "r",
        );
        let cfg = ContainmentConfig::default();
        let (a, b) = equivalent(&q1, &q2, &mut voc, &cfg).unwrap();
        assert!(a.result.is_contained(), "{:?}", a.result);
        assert!(b.result.is_contained(), "{:?}", b.result);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let (q1, q2, mut voc) = setup("a(X) :- P(X)\nb :- P(X)\n", &["P"], "a", "b");
        assert_eq!(
            contains(&q1, &q2, &mut voc, &ContainmentConfig::default()).unwrap_err(),
            ContainmentError::ArityMismatch
        );
    }

    /// Sticky LHS (recursive, unguarded, marking-clean) — exercises the
    /// sticky rewriting path of Thm. 19.
    #[test]
    fn sticky_lhs_containment() {
        let (q1, q2, mut voc) = setup(
            "R(X,Y), P(Y,Z) -> exists W . T(X,Y,W)\n\
             T(X,Y,W) -> R(Y,X)\n\
             qs :- T(X,Y,W)\n\
             ql :- T(X,Y,W)\n",
            &["R", "P"],
            "qs",
            "ql",
        );
        // Same ontology and query on both sides: containment must hold.
        let cfg = ContainmentConfig::default();
        let out = contains(&q1, &q2, &mut voc, &cfg).unwrap();
        assert_eq!(out.lhs_language, OmqLanguage::Sticky);
        assert!(out.result.is_contained(), "{:?}", out.result);
        assert!(out.witnesses_checked >= 1);
    }

    /// Guarded LHS: the anytime path still refutes non-containment with a
    /// concrete witness.
    #[test]
    fn guarded_lhs_refutation() {
        let (q1, q2, mut voc) = setup(
            "G(X,Y,Z), R(X,Y) -> exists W . G(Y,Z,W), R(Y,Z)\n\
             g :- G(X,Y,Z)\n\
             h :- R(X,Y), R(Y,Z), R(Z,X)\n",
            &["G", "R"],
            "g",
            "h",
        );
        let cfg = ContainmentConfig::default();
        let out = contains(&q1, &q2, &mut voc, &cfg).unwrap();
        assert_eq!(out.lhs_language, OmqLanguage::Guarded);
        assert!(out.result.is_not_contained(), "{:?}", out.result);
    }

    /// A non-UCQ-rewritable LHS (full tgds) whose particular query still
    /// saturates the rewriting: the anytime path returns an exact
    /// `Contained`.
    #[test]
    fn anytime_saturating_containment() {
        let (q1, q2, mut voc) = setup(
            "B(X,Y), C(Y,Z) -> B(X,Z)\n\
             g :- C(U,V)\n\
             h :- C(U,V)\n",
            &["B", "C"],
            "g",
            "h",
        );
        let cfg = ContainmentConfig::default();
        let out = contains(&q1, &q2, &mut voc, &cfg).unwrap();
        assert_eq!(out.lhs_language, OmqLanguage::Full);
        assert!(out.result.is_contained(), "{:?}", out.result);
    }

    /// A guarded LHS where neither a refutation nor saturation is reachable
    /// within tiny budgets: the anytime path reports Unknown honestly.
    #[test]
    fn anytime_unknown_on_tiny_budgets() {
        let (q1, q2, mut voc) = setup(
            "G(X,Y,Z), R(X,Y) -> exists W . G(Y,Z,W), R(Y,Z)\n\
             g :- G(X,Y,Z), R(X,Y)\n\
             h :- G(X,Y,Z)\n",
            &["G", "R"],
            "g",
            "h",
        );
        let cfg = ContainmentConfig {
            anytime_budgets: vec![5],
            ..Default::default()
        };
        let out = contains(&q1, &q2, &mut voc, &cfg).unwrap();
        // Every rewriting disjunct of g keeps a G-atom, so h is never
        // refuted; but the rewriting does not saturate either.
        assert!(
            matches!(out.result, ContainmentResult::Unknown(_)) || out.result.is_contained(),
            "{:?}",
            out.result
        );
    }

    /// Witnesses respect the data schema: the rewriting only emits
    /// disjuncts over S, so the counterexample database is S-only.
    #[test]
    fn witness_is_over_data_schema() {
        let (q1, q2, mut voc) = setup(
            "P(X) -> exists Y . R(X,Y)\n\
             a(X) :- P(X)\n\
             b(X) :- T(X)\n",
            &["P", "T"],
            "a",
            "b",
        );
        let cfg = ContainmentConfig::default();
        let out = contains(&q1, &q2, &mut voc, &cfg).unwrap();
        match out.result {
            ContainmentResult::NotContained(w) => {
                for atom in w.database.atoms() {
                    assert!(q1.data_schema.contains(atom.pred));
                }
                assert_eq!(w.tuple.len(), 1);
            }
            other => panic!("expected witness, got {other:?}"),
        }
    }

    #[test]
    fn ucq_convenience_wrapper() {
        let prog = parse_program("a(X) :- P(X)\nb(X) :- P(X)\nb(X) :- T(X)\n").unwrap();
        let mut voc = prog.voc.clone();
        let schema = Schema::from_preds([voc.pred_id("P").unwrap(), voc.pred_id("T").unwrap()]);
        let cfg = ContainmentConfig::default();
        let out = ucq_contains(
            prog.query("a").unwrap(),
            prog.query("b").unwrap(),
            &schema,
            &mut voc,
            &cfg,
        )
        .unwrap();
        assert!(out.result.is_contained());
        let back = ucq_contains(
            prog.query("b").unwrap(),
            prog.query("a").unwrap(),
            &schema,
            &mut voc,
            &cfg,
        )
        .unwrap();
        assert!(back.result.is_not_contained());
    }

    /// Differential: the bitset fast path must agree with the generic
    /// per-mask evaluation sweep — verdict, winning (lowest) mask, witness
    /// database, and stats accounting — on randomized propositional Horn
    /// OMQs with intensional predicates.
    #[test]
    fn propositional_bitset_matches_generic_enumeration() {
        use omq_model::{Atom, PredId, Tgd, Ucq};

        fn next(s: &mut u64) -> u64 {
            *s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        let cfg = ContainmentConfig {
            threads: 1,
            ..ContainmentConfig::default()
        };
        for seed in 0..60u64 {
            let mut s = seed;
            let mut voc = Vocabulary::new();
            let n_data = 3 + (next(&mut s) % 3) as usize;
            let data: Vec<PredId> = (0..n_data).map(|i| voc.pred(&format!("D{i}"), 0)).collect();
            let aux: Vec<PredId> = (0..3).map(|i| voc.pred(&format!("X{i}"), 0)).collect();
            let all: Vec<PredId> = data.iter().chain(aux.iter()).copied().collect();
            let rand_atoms = |s: &mut u64, lo: usize, hi: usize| -> Vec<Atom> {
                let n = lo + (next(s) as usize) % (hi - lo + 1);
                (0..n)
                    .map(|_| Atom::new(all[(next(s) as usize) % all.len()], vec![]))
                    .collect()
            };
            let rand_omq = |s: &mut u64| -> Omq {
                let sigma = (0..(next(s) % 5) as usize)
                    .map(|_| Tgd::new(rand_atoms(s, 0, 2), rand_atoms(s, 1, 2)))
                    .collect();
                let disjuncts = (0..1 + (next(s) % 2) as usize)
                    .map(|_| Cq::new(vec![], rand_atoms(s, 1, 2)))
                    .collect();
                Omq::new(
                    Schema::from_preds(data.iter().copied()),
                    sigma,
                    Ucq::new(0, disjuncts),
                )
            };
            let q1 = rand_omq(&mut s);
            let q2 = rand_omq(&mut s);

            // Generic reference: the exact semantics of the evaluate-based
            // sweep the fast path replaces.
            let mut expected: Option<(u64, Instance)> = None;
            for mask in 0..(1u64 << n_data) {
                let db = Instance::from_atoms(
                    data.iter()
                        .enumerate()
                        .filter(|(i, _)| mask >> i & 1 == 1)
                        .map(|(_, &p)| Atom::new(p, vec![])),
                );
                let a1 = crate::evaluate::evaluate(&q1, &db, &mut voc, &cfg.eval);
                let a2 = crate::evaluate::evaluate(&q2, &db, &mut voc, &cfg.eval);
                use crate::evaluate::EvalGuarantee::SoundLowerBound;
                assert_ne!(a1.guarantee, SoundLowerBound, "seed {seed}");
                assert_ne!(a2.guarantee, SoundLowerBound, "seed {seed}");
                if !a1.answers.is_empty() && a2.answers.is_empty() {
                    expected = Some((mask, db));
                    break;
                }
            }

            let mut stats = (0usize, 0usize);
            let got = propositional_bitset(&q1, &q2, &voc, &cfg, &mut stats)
                .unwrap_or_else(|| panic!("seed {seed}: fast path must engage"));
            match (&expected, &got) {
                (Some((mask, db)), ContainmentResult::NotContained(w)) => {
                    assert_eq!(&w.database, db, "seed {seed}");
                    assert!(w.tuple.is_empty(), "seed {seed}");
                    assert_eq!(stats.0 as u64, mask + 1, "seed {seed}");
                }
                (None, ContainmentResult::Contained) => {
                    assert_eq!(stats.0 as u64, 1u64 << n_data, "seed {seed}");
                }
                (e, g) => panic!("seed {seed}: generic {e:?} vs bitset {g:?}"),
            }
        }
    }

    /// Differential: the relaxation-pruned generic sweep (mixed 0-ary and
    /// unary predicates, so the exact bitset path declines) must agree
    /// with a brute-force per-mask evaluation reference — verdict and
    /// witness database both.
    #[test]
    fn pruned_enumeration_matches_bruteforce() {
        use omq_model::{Atom, PredId, Term, Tgd, Ucq, VarId};

        fn next(s: &mut u64) -> u64 {
            *s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        let cfg = ContainmentConfig {
            threads: 1,
            ..ContainmentConfig::default()
        };
        for seed in 0..40u64 {
            let mut s = seed.wrapping_add(1000);
            let mut voc = Vocabulary::new();
            let n_data = 3 + (next(&mut s) % 2) as usize;
            let data: Vec<PredId> = (0..n_data).map(|i| voc.pred(&format!("D{i}"), 0)).collect();
            let zero: Vec<PredId> = (0..2).map(|i| voc.pred(&format!("Z{i}"), 0)).collect();
            let unary: Vec<PredId> = (0..2).map(|i| voc.pred(&format!("U{i}"), 1)).collect();
            let x = Term::Var(VarId(0));
            // Datalog-only generation (no existential head variables), so
            // every chase terminates and the reference is exact: a unary
            // head atom is only emitted under a unary body atom providing
            // its variable; the seed constant grounds unary facts.
            let c = Term::Const(voc.constant("c"));
            let rand_omq = |s: &mut u64, voc: &mut Vocabulary| -> Omq {
                let _ = voc;
                let mut sigma = Vec::new();
                for _ in 0..2 + (next(s) % 3) as usize {
                    let mut body = Vec::new();
                    let mut has_unary = false;
                    for _ in 0..1 + (next(s) % 2) as usize {
                        match next(s) % 3 {
                            0 => {
                                body.push(Atom::new(data[(next(s) as usize) % data.len()], vec![]))
                            }
                            1 => {
                                body.push(Atom::new(zero[(next(s) as usize) % zero.len()], vec![]))
                            }
                            _ => {
                                has_unary = true;
                                body.push(Atom::new(
                                    unary[(next(s) as usize) % unary.len()],
                                    vec![x],
                                ));
                            }
                        }
                    }
                    let head = if has_unary && next(s).is_multiple_of(2) {
                        vec![Atom::new(unary[(next(s) as usize) % unary.len()], vec![x])]
                    } else if next(s).is_multiple_of(3) {
                        vec![Atom::new(unary[(next(s) as usize) % unary.len()], vec![c])]
                    } else {
                        vec![Atom::new(zero[(next(s) as usize) % zero.len()], vec![])]
                    };
                    sigma.push(Tgd::new(body, head));
                }
                let disjuncts = (0..1 + (next(s) % 2) as usize)
                    .map(|_| {
                        let mut b = Vec::new();
                        for _ in 0..1 + (next(s) % 2) as usize {
                            match next(s) % 3 {
                                0 => {
                                    b.push(Atom::new(data[(next(s) as usize) % data.len()], vec![]))
                                }
                                1 => {
                                    b.push(Atom::new(zero[(next(s) as usize) % zero.len()], vec![]))
                                }
                                _ => b.push(Atom::new(
                                    unary[(next(s) as usize) % unary.len()],
                                    vec![Term::Var(VarId(1))],
                                )),
                            }
                        }
                        Cq::new(vec![], b)
                    })
                    .collect();
                Omq::new(
                    Schema::from_preds(data.iter().copied()),
                    sigma,
                    Ucq::new(0, disjuncts),
                )
            };
            let q1 = rand_omq(&mut s, &mut voc);
            let q2 = rand_omq(&mut s, &mut voc);
            let langs = (detect_language(&q1), detect_language(&q2));

            // Brute-force reference over all masks.
            let mut expected: Option<(u64, Instance)> = None;
            for mask in 0..(1u64 << n_data) {
                let db = Instance::from_atoms(
                    data.iter()
                        .enumerate()
                        .filter(|(i, _)| mask >> i & 1 == 1)
                        .map(|(_, &p)| Atom::new(p, vec![])),
                );
                let a1 = crate::evaluate::evaluate(&q1, &db, &mut voc, &cfg.eval);
                let a2 = crate::evaluate::evaluate(&q2, &db, &mut voc, &cfg.eval);
                use crate::evaluate::EvalGuarantee::SoundLowerBound;
                assert_ne!(a1.guarantee, SoundLowerBound, "seed {seed}");
                assert_ne!(a2.guarantee, SoundLowerBound, "seed {seed}");
                if !a1.answers.is_empty() && a2.answers.is_empty() {
                    expected = Some((mask, db));
                    break;
                }
            }

            let mut stats = (0usize, 0usize);
            let got = propositional_enumeration(&q1, &q2, langs, &mut voc, &cfg, &mut stats)
                .unwrap_or_else(|| panic!("seed {seed}: exact evaluations cannot fall back"));
            match (&expected, &got) {
                (Some((_, db)), ContainmentResult::NotContained(w)) => {
                    assert_eq!(&w.database, db, "seed {seed}");
                    assert!(w.tuple.is_empty(), "seed {seed}");
                }
                (None, ContainmentResult::Contained) => {}
                (e, g) => panic!("seed {seed}: reference {e:?} vs pruned sweep {g:?}"),
            }
        }
    }

    /// The fast path declines (and the generic machinery takes over) as
    /// soon as an intensional predicate is non-propositional.
    #[test]
    fn propositional_bitset_declines_nonzero_arity() {
        let (q1, q2, voc) = setup(
            "A -> exists Y . R(Y)\n\
             a :- A\n\
             b :- R(Y)\n",
            &["A"],
            "a",
            "b",
        );
        let mut stats = (0usize, 0usize);
        assert!(
            propositional_bitset(&q1, &q2, &voc, &ContainmentConfig::default(), &mut stats)
                .is_none()
        );
        assert_eq!(stats.0, 0, "no masks may be counted before compiling");
    }

    /// A guarded lhs whose critical-instance check certifies emptiness is
    /// contained in everything — the anytime ladder short-circuits off the
    /// encoding artifact, whether it compiles one itself or a serving layer
    /// supplies its cached copy via [`ContainmentConfig::lhs_encoding`].
    #[test]
    fn unsatisfiable_guarded_lhs_short_circuits_to_contained() {
        // `q1` asks for `U`, which is outside the data schema and no tgd
        // head ever produces; the guarded tgd keeps the lhs in the guarded
        // (non-UCQ-rewritable) language so the ladder rung actually runs.
        let (q1, q2, mut voc) = setup(
            "G(X,Y,Z), R(X,Y) -> exists W . G(Y,Z,W), R(Y,Z)\n\
             U(X) -> U(X)\n\
             q1 :- U(X)\n\
             q2 :- R(X,Y)\n",
            &["G", "R"],
            "q1",
            "q2",
        );
        assert_eq!(detect_language(&q1), OmqLanguage::Guarded);
        let cfg = ContainmentConfig::default();
        let out = contains(&q1, &q2, &mut voc, &cfg).unwrap();
        assert!(out.result.is_contained(), "got {:?}", out.result);

        // Same verdict when the artifact arrives pre-compiled, as the
        // serve layer's encoding cache hands it over.
        let ecfg = omq_guarded::EncodingConfig::default();
        let art = omq_guarded::compile_encoding(&q1, &mut voc.clone(), &ecfg)
            .expect("the encoding compiles");
        assert_eq!(art.critical_satisfiable, Some(false));
        let cached = ContainmentConfig {
            lhs_encoding: Some(std::sync::Arc::new(art)),
            ..ContainmentConfig::default()
        };
        let out = contains(&q1, &q2, &mut voc, &cached).unwrap();
        assert!(out.result.is_contained(), "got {:?}", out.result);
    }
}
