//! Tree decompositions of instances (Def. 8 of the paper's appendix) and
//! the `[U]`-guardedness condition underlying C-trees.

use std::collections::HashSet;

use omq_automata::LTree;
use omq_model::{Instance, Term};

/// A tree decomposition of an instance: a tree whose nodes carry *bags* of
/// terms.
#[derive(Clone, Debug)]
pub struct TreeDecomposition {
    /// The tree of bags.
    pub tree: LTree<Vec<Term>>,
}

impl TreeDecomposition {
    /// A decomposition with the given root bag.
    pub fn new(root_bag: Vec<Term>) -> Self {
        TreeDecomposition {
            tree: LTree::new(root_bag),
        }
    }

    /// Adds a bag under `parent`; returns its node id.
    pub fn add_bag(&mut self, parent: usize, bag: Vec<Term>) -> usize {
        self.tree.add_child(parent, bag)
    }

    /// The width: `max |bag| − 1`.
    pub fn width(&self) -> usize {
        self.tree
            .nodes()
            .map(|n| self.tree.label(n).len())
            .max()
            .unwrap_or(1)
            .saturating_sub(1)
    }

    /// Condition (1) of Def. 8: every atom of `inst` fits in some bag.
    pub fn covers_atoms(&self, inst: &Instance) -> bool {
        inst.atoms().iter().all(|a| {
            self.tree.nodes().any(|n| {
                let bag = self.tree.label(n);
                a.args.iter().all(|t| bag.contains(t))
            })
        })
    }

    /// Condition (2) of Def. 8: for every term, the bags containing it form
    /// a connected subtree.
    pub fn connected(&self, inst: &Instance) -> bool {
        for t in inst.active_domain() {
            let holders: Vec<usize> = self
                .tree
                .nodes()
                .filter(|&n| self.tree.label(n).contains(&t))
                .collect();
            if holders.len() <= 1 {
                continue;
            }
            // All holders must be connected: walk each holder to the
            // shallowest holder; every node on the way must also hold `t`.
            // Equivalently: each holder except the unique shallowest one has
            // a parent that holds `t`.
            let mut roots = 0usize;
            for &n in &holders {
                match self.tree.parent(n) {
                    Some(p) if self.tree.label(p).contains(&t) => {}
                    _ => roots += 1,
                }
            }
            if roots != 1 {
                return false;
            }
        }
        true
    }

    /// Is this a valid tree decomposition of `inst`?
    pub fn is_valid_for(&self, inst: &Instance) -> bool {
        self.covers_atoms(inst) && self.connected(inst)
    }

    /// Is the decomposition guarded except for the given nodes (`[U]`-
    /// guarded): every other bag is covered by some atom of `inst`?
    pub fn guarded_except(&self, inst: &Instance, except: &[usize]) -> bool {
        self.tree.nodes().all(|n| {
            if except.contains(&n) {
                return true;
            }
            let bag: HashSet<Term> = self.tree.label(n).iter().copied().collect();
            inst.atoms()
                .iter()
                .any(|a| bag.iter().all(|t| a.args.contains(t)))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_model::{Atom, Vocabulary};

    fn term(voc: &mut Vocabulary, name: &str) -> Term {
        Term::Const(voc.constant(name))
    }

    #[test]
    fn valid_path_decomposition() {
        let mut voc = Vocabulary::new();
        let r = voc.pred("R", 2);
        let (a, b, c) = (
            term(&mut voc, "a"),
            term(&mut voc, "b"),
            term(&mut voc, "c"),
        );
        let inst = Instance::from_atoms([Atom::new(r, vec![a, b]), Atom::new(r, vec![b, c])]);
        let mut td = TreeDecomposition::new(vec![a, b]);
        td.add_bag(0, vec![b, c]);
        assert!(td.is_valid_for(&inst));
        assert_eq!(td.width(), 1);
        assert!(td.guarded_except(&inst, &[]));
    }

    #[test]
    fn missing_atom_detected() {
        let mut voc = Vocabulary::new();
        let r = voc.pred("R", 2);
        let (a, b, c) = (
            term(&mut voc, "a"),
            term(&mut voc, "b"),
            term(&mut voc, "c"),
        );
        let inst = Instance::from_atoms([Atom::new(r, vec![a, b]), Atom::new(r, vec![a, c])]);
        let td = TreeDecomposition::new(vec![a, b]);
        assert!(!td.covers_atoms(&inst));
    }

    #[test]
    fn disconnected_term_detected() {
        let mut voc = Vocabulary::new();
        let r = voc.pred("R", 2);
        let (a, b, c) = (
            term(&mut voc, "a"),
            term(&mut voc, "b"),
            term(&mut voc, "c"),
        );
        let inst = Instance::from_atoms([Atom::new(r, vec![a, b]), Atom::new(r, vec![b, c])]);
        // b appears in two bags separated by a b-free bag: invalid.
        let mut td = TreeDecomposition::new(vec![a, b]);
        let mid = td.add_bag(0, vec![a, c]);
        td.add_bag(mid, vec![b, c]);
        assert!(!td.connected(&inst));
    }

    #[test]
    fn unguarded_bag_detected() {
        let mut voc = Vocabulary::new();
        let r = voc.pred("R", 2);
        let (a, b, c) = (
            term(&mut voc, "a"),
            term(&mut voc, "b"),
            term(&mut voc, "c"),
        );
        let inst = Instance::from_atoms([Atom::new(r, vec![a, b]), Atom::new(r, vec![b, c])]);
        // Bag {a, c} is not covered by any atom.
        let mut td = TreeDecomposition::new(vec![a, b, c]);
        td.add_bag(0, vec![a, c]);
        assert!(!td.guarded_except(&inst, &[]));
        assert!(td.guarded_except(&inst, &[0, 1]));
    }
}
