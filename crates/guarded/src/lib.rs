//! # omq-guarded
//!
//! The guarded-tgd substrate of §5: tree decompositions and **C-trees**
//! (Def. 2/9), their encoding as `Γ_{S,l}`-labeled trees with the
//! consistency conditions of Lemma 41, the consistency automaton of
//! Lemma 23, and a guarded evaluation engine.
//!
//! Under guarded tgds the chase has bounded treewidth but need not
//! terminate, so evaluation works with a depth-budgeted chase plus a
//! *type-stabilization* criterion in the spirit of Calì–Gottlob–Kifer's
//! "Taming the infinite chase": once the set of isomorphism types of derived
//! atoms stops growing for a window of `|q| + 1` consecutive depth levels,
//! deeper levels only repeat existing patterns up to isomorphism and cannot
//! create new query matches. The engine reports exactly which guarantee the
//! returned answer carries ([`guarded_eval::Completeness`]).

pub mod compile;
pub mod ctree;
pub mod encoding;
pub mod guarded_eval;
pub mod tree_decomposition;
pub mod unravel;

pub use compile::{compile_encoding, EncodingArtifact, EncodingConfig};
pub use ctree::CTree;
pub use encoding::{
    consistency_automaton_downward, decode, encode, is_consistent, Name, NodeLabel,
};
pub use guarded_eval::{guarded_certain_answers, Completeness, GuardedAnswers, GuardedConfig};
pub use tree_decomposition::TreeDecomposition;
pub use unravel::{unravel, Unraveling};
