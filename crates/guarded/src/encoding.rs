//! Encoding C-trees as `Γ_{S,l}`-labeled trees (§5.2 and Lemma 41).
//!
//! A node label records which *names* are in use (`Da`), which of them
//! denote core elements (`Ca`), and which atoms hold over the named
//! elements (`Ra̅`). Names come from a pool `U_{S,l}` with `l` core names
//! and `2·ar(S)` tree names, so that neighboring bags can always give
//! distinct elements distinct names.
//!
//! [`is_consistent`] checks the five consistency conditions of the paper;
//! [`decode`] turns a consistent labeled tree back into a C-tree database
//! (Lemma 41); [`consistency_automaton_downward`] builds the 2WAPA of
//! Lemma 23 for the downward-checkable conditions (1)–(4), usable with the
//! alternating→nondeterministic translation; condition (5) (guardedness of
//! every bag, a genuinely two-way reachability property) is checked
//! procedurally.

use std::collections::{BTreeSet, HashMap, HashSet};

use omq_automata::{Bf, Dir, LTree, Transition, Twapa};
use omq_model::{Atom, Instance, PredId, Term, Vocabulary};

use crate::ctree::CTree;

/// A name from the pool `U_{S,l}`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Name {
    /// One of the `l` core names (`C_l` in the paper).
    Core(u8),
    /// One of the `2·ar(S)` tree names (`T_S`).
    Tree(u8),
}

/// A symbol of the alphabet `Γ_{S,l}`: the set of `K_{S,l}`-flags of one
/// node.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default, PartialOrd, Ord)]
pub struct NodeLabel {
    /// `Da` flags: names in use at this node.
    pub names: BTreeSet<Name>,
    /// `Ca` flags: names denoting core elements (always core names).
    pub core_names: BTreeSet<Name>,
    /// `Ra̅` flags: atoms over the named elements.
    pub atoms: BTreeSet<(PredId, Vec<Name>)>,
}

/// Encodes a C-tree (with its witnessing decomposition) as a labeled tree.
///
/// Returns `None` when the core has more than `l` elements or some bag
/// exceeds the arity bound `ar` (non-root bags must have ≤ `ar` elements).
pub fn encode(ctree: &CTree, l: usize, ar: usize) -> Option<LTree<NodeLabel>> {
    let dec = &ctree.decomposition.tree;
    let root_bag = dec.label(0);
    if root_bag.len() > l || l > u8::MAX as usize || 2 * ar > u8::MAX as usize {
        return None;
    }
    // Name assignment per node: term -> name.
    let mut naming: Vec<HashMap<Term, Name>> = Vec::with_capacity(dec.len());
    let mut core_assignment: HashMap<Term, Name> = HashMap::new();
    for (i, &t) in root_bag.iter().enumerate() {
        core_assignment.insert(t, Name::Core(i as u8));
    }
    let mut out: Option<LTree<NodeLabel>> = None;
    for node in dec.nodes() {
        let bag = dec.label(node);
        if node != 0 && bag.len() > ar {
            return None;
        }
        let mut map: HashMap<Term, Name> = HashMap::new();
        if node == 0 {
            map = core_assignment.clone();
        } else {
            let parent = dec.parent(node).expect("non-root has a parent");
            let pmap = naming[parent].clone();
            // Inherited elements keep their names; fresh elements get tree
            // names unused by the parent.
            let used_by_parent: HashSet<Name> = pmap.values().copied().collect();
            let mut pool = (0..2 * ar as u8)
                .map(Name::Tree)
                .filter(|n| !used_by_parent.contains(n));
            for &t in bag {
                if let Some(&cn) = core_assignment.get(&t) {
                    map.insert(t, cn);
                } else if let Some(&pn) = pmap.get(&t) {
                    map.insert(t, pn);
                } else {
                    map.insert(t, pool.next()?);
                }
            }
        }
        // Build the label.
        let mut label = NodeLabel::default();
        for (&t, &n) in &map {
            label.names.insert(n);
            if core_assignment.contains_key(&t) {
                label.core_names.insert(n);
            }
            let _ = t;
        }
        for a in ctree.instance.atoms() {
            if a.args.iter().all(|t| map.contains_key(t)) {
                let named: Vec<Name> = a.args.iter().map(|t| map[t]).collect();
                label.atoms.insert((a.pred, named));
            }
        }
        match (&mut out, dec.parent(node)) {
            (None, _) => {
                out = Some(LTree::new(label));
            }
            (Some(tree), Some(parent)) => {
                // Decomposition node ids equal labeled-tree node ids because
                // both are created in the same order.
                let id = tree.add_child(parent, label);
                debug_assert_eq!(id, node);
            }
            _ => unreachable!(),
        }
        naming.push(map);
    }
    out
}

/// `names(v)` of a label.
fn names(label: &NodeLabel) -> &BTreeSet<Name> {
    &label.names
}

/// Checks the five consistency conditions of §5.2.
pub fn is_consistent(tree: &LTree<NodeLabel>, l: usize, ar: usize) -> bool {
    for v in tree.nodes() {
        let lab = tree.label(v);
        // (1) Name-count bounds; root uses core names only.
        if v == 0 {
            if lab.names.len() > l || lab.names.iter().any(|n| matches!(n, Name::Tree(_))) {
                return false;
            }
        } else if lab.names.len() > ar {
            return false;
        }
        // (3) Da ⟺ Ca for core names; Ca only on core names.
        for n in &lab.core_names {
            if matches!(n, Name::Tree(_)) || !lab.names.contains(n) {
                return false;
            }
        }
        for n in &lab.names {
            if matches!(n, Name::Core(_)) && !lab.core_names.contains(n) {
                return false;
            }
        }
        // (2) Atom names are declared.
        for (_, args) in &lab.atoms {
            if args.iter().any(|n| !lab.names.contains(n)) {
                return false;
            }
        }
        // (4) Ca propagates towards the root.
        if let Some(p) = tree.parent(v) {
            for n in &lab.core_names {
                if !tree.label(p).core_names.contains(n) {
                    return false;
                }
            }
        }
        // (5) Guardedness: some node w, b-connected to v for every
        // b ∈ names(v), has an atom covering names(v).
        if v != 0 && !lab.names.is_empty() && !find_guard(tree, v) {
            return false;
        }
    }
    true
}

/// Condition (5): BFS through nodes whose labels retain all of `names(v)`,
/// looking for an atom covering `names(v)`.
fn find_guard(tree: &LTree<NodeLabel>, v: usize) -> bool {
    let need = names(tree.label(v)).clone();
    let mut seen = HashSet::new();
    let mut stack = vec![v];
    seen.insert(v);
    while let Some(u) = stack.pop() {
        let lab = tree.label(u);
        if lab
            .atoms
            .iter()
            .any(|(_, args)| need.iter().all(|n| args.contains(n)))
        {
            return true;
        }
        let mut neigh: Vec<usize> = tree.children(u).to_vec();
        if let Some(p) = tree.parent(u) {
            neigh.push(p);
        }
        for w in neigh {
            if !seen.contains(&w) && need.iter().all(|n| tree.label(w).names.contains(n)) {
                seen.insert(w);
                stack.push(w);
            }
        }
    }
    false
}

/// Decodes a consistent labeled tree into a database (Lemma 41): elements
/// are the a-equivalence classes `[v]_a`, realized as fresh constants.
pub fn decode(tree: &LTree<NodeLabel>, voc: &mut Vocabulary) -> Instance {
    // Union-find over (node, name): (v, a) ~ (parent(v), a) when both carry
    // Da.
    let mut class: HashMap<(usize, Name), (usize, Name)> = HashMap::new();
    fn find(class: &mut HashMap<(usize, Name), (usize, Name)>, x: (usize, Name)) -> (usize, Name) {
        let p = *class.get(&x).unwrap_or(&x);
        if p == x {
            return x;
        }
        let r = find(class, p);
        class.insert(x, r);
        r
    }
    for v in tree.nodes() {
        if let Some(p) = tree.parent(v) {
            for &n in names(tree.label(v)) {
                if tree.label(p).names.contains(&n) {
                    let (rv, rp) = (find(&mut class, (v, n)), find(&mut class, (p, n)));
                    if rv != rp {
                        class.insert(rv, rp);
                    }
                }
            }
        }
    }
    let mut consts: HashMap<(usize, Name), Term> = HashMap::new();
    let mut inst = Instance::new();
    let term_of = |class_rep: (usize, Name),
                   voc: &mut Vocabulary,
                   consts: &mut HashMap<(usize, Name), Term>| {
        *consts
            .entry(class_rep)
            .or_insert_with(|| Term::Const(voc.fresh_const("d")))
    };
    for v in tree.nodes() {
        for (pred, args) in &tree.label(v).atoms {
            let terms: Vec<Term> = args
                .iter()
                .map(|&n| {
                    let rep = find(&mut class, (v, n));
                    term_of(rep, voc, &mut consts)
                })
                .collect();
            inst.insert(Atom::new(*pred, terms));
        }
    }
    inst
}

/// The 2WAPA of Lemma 23 restricted to the *downward* consistency
/// conditions (1)–(4), over an explicitly given finite alphabet.
///
/// States are "forbidden core-name sets": after visiting a node whose label
/// lacks `Ca`, no descendant may carry `Ca` (condition 4). Conditions
/// (1)–(3) are checked locally. The automaton is downward and all-odd, so
/// it composes with [`omq_automata::Twapa::to_nta`]; condition (5) is
/// checked procedurally by [`is_consistent`].
pub fn consistency_automaton_downward(
    alphabet: &[NodeLabel],
    l: usize,
    ar: usize,
) -> Twapa<NodeLabel> {
    // Collect all core names mentioned in the alphabet.
    let mut core_names: BTreeSet<Name> = BTreeSet::new();
    for lab in alphabet {
        for &n in &lab.names {
            if matches!(n, Name::Core(_)) {
                core_names.insert(n);
            }
        }
    }
    // States: 0 = root check; then one state per forbidden set (interned).
    let mut sets: Vec<BTreeSet<Name>> = Vec::new();
    let mut index: HashMap<BTreeSet<Name>, usize> = HashMap::new();
    let intern = |s: BTreeSet<Name>,
                  sets: &mut Vec<BTreeSet<Name>>,
                  index: &mut HashMap<BTreeSet<Name>, usize>| {
        *index.entry(s.clone()).or_insert_with(|| {
            sets.push(s);
            sets.len() // state ids start at 1
        })
    };

    let local_ok = |lab: &NodeLabel, root: bool| -> bool {
        if root {
            if lab.names.len() > l || lab.names.iter().any(|n| matches!(n, Name::Tree(_))) {
                return false;
            }
        } else if lab.names.len() > ar {
            return false;
        }
        lab.core_names
            .iter()
            .all(|n| matches!(n, Name::Core(_)) && lab.names.contains(n))
            && lab
                .names
                .iter()
                .all(|n| matches!(n, Name::Tree(_)) || lab.core_names.contains(n))
            && lab
                .atoms
                .iter()
                .all(|(_, args)| args.iter().all(|n| lab.names.contains(n)))
    };

    let mut delta: HashMap<(usize, NodeLabel), Bf<Transition>> = HashMap::new();
    // We enumerate transitions lazily over the finite alphabet; state space
    // is built by need starting from the root state.
    let mut work: Vec<(usize, Option<BTreeSet<Name>>)> = vec![(0, None)];
    let mut done: HashSet<usize> = HashSet::new();
    let mut forbidden_of: HashMap<usize, BTreeSet<Name>> = HashMap::new();
    while let Some((state, forb)) = work.pop() {
        if !done.insert(state) {
            continue;
        }
        for lab in alphabet {
            let root = state == 0;
            let mut ok = local_ok(lab, root);
            if let Some(f) = &forb {
                if lab.core_names.iter().any(|n| f.contains(n)) {
                    ok = false;
                }
            }
            if !ok {
                delta.insert((state, lab.clone()), Bf::False);
                continue;
            }
            let next_forbidden: BTreeSet<Name> = core_names
                .iter()
                .copied()
                .filter(|n| !lab.core_names.contains(n))
                .collect();
            let next_state = intern(next_forbidden.clone(), &mut sets, &mut index);
            forbidden_of.insert(next_state, next_forbidden.clone());
            work.push((next_state, Some(next_forbidden)));
            delta.insert(
                (state, lab.clone()),
                Bf::Lit(Transition::boxed(Dir::Down, next_state)),
            );
        }
    }
    let num_states = sets.len() + 1;
    Twapa {
        num_states,
        initial: 0,
        priorities: vec![1; num_states],
        alphabet: alphabet.to_vec(),
        delta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_model::Instance;

    fn sample_ctree(voc: &mut Vocabulary) -> CTree {
        let r = voc.pred("R", 2);
        let p = voc.pred("P", 1);
        let a = Term::Const(voc.constant("a"));
        let b = Term::Const(voc.constant("b"));
        let x = Term::Const(voc.constant("x"));
        let y = Term::Const(voc.constant("y"));
        let core = Instance::from_atoms([Atom::new(r, vec![a, b]), Atom::new(r, vec![b, a])]);
        let mut t = CTree::from_core(core);
        let n1 = t.add_guarded_atom(0, Atom::new(r, vec![b, x]));
        let n2 = t.add_guarded_atom(n1, Atom::new(r, vec![x, y]));
        t.instance.insert(Atom::new(p, vec![y]));
        let _ = n2;
        t
    }

    #[test]
    fn encode_produces_consistent_tree() {
        let mut voc = Vocabulary::new();
        let t = sample_ctree(&mut voc);
        assert!(t.validate());
        let enc = encode(&t, 4, 2).expect("encodes");
        assert_eq!(enc.len(), 3);
        assert!(is_consistent(&enc, 4, 2));
    }

    #[test]
    fn encode_rejects_oversized_core() {
        let mut voc = Vocabulary::new();
        let t = sample_ctree(&mut voc);
        assert!(encode(&t, 1, 2).is_none());
    }

    #[test]
    fn decode_roundtrip_preserves_structure() {
        let mut voc = Vocabulary::new();
        let t = sample_ctree(&mut voc);
        let enc = encode(&t, 4, 2).unwrap();
        let dec = decode(&enc, &mut voc);
        assert_eq!(dec.len(), t.instance.len());
        // Same shape up to renaming: freeze both into Boolean CQs and check
        // isomorphism.
        let to_cq = |i: &Instance| {
            let body: Vec<Atom> = i
                .atoms()
                .iter()
                .map(|a| {
                    a.map_terms(|term| match term {
                        Term::Const(c) => Term::Var(omq_model::VarId(c.0)),
                        other => other,
                    })
                })
                .collect();
            omq_model::Cq::boolean(body)
        };
        assert!(omq_chase::cq_isomorphic(&to_cq(&dec), &to_cq(&t.instance)));
    }

    #[test]
    fn inconsistency_detected_on_dangling_atom_name() {
        let mut lab = NodeLabel::default();
        lab.atoms.insert((PredId(0), vec![Name::Core(0)]));
        let tree = LTree::new(lab);
        assert!(!is_consistent(&tree, 2, 2)); // condition (2) violated
    }

    #[test]
    fn inconsistency_detected_on_core_flag_mismatch() {
        let mut lab = NodeLabel::default();
        lab.names.insert(Name::Core(0)); // Da without Ca: violates (3)
        let tree = LTree::new(lab);
        assert!(!is_consistent(&tree, 2, 2));
    }

    #[test]
    fn inconsistency_detected_on_core_resurrection() {
        // Root with core name, child without it, grandchild with it again:
        // violates condition (4).
        let mut root = NodeLabel::default();
        root.names.insert(Name::Core(0));
        root.core_names.insert(Name::Core(0));
        root.atoms.insert((PredId(0), vec![Name::Core(0)]));
        let mut mid = NodeLabel::default();
        mid.names.insert(Name::Tree(0));
        mid.atoms.insert((PredId(0), vec![Name::Tree(0)]));
        let mut deep = NodeLabel::default();
        deep.names.insert(Name::Core(0));
        deep.core_names.insert(Name::Core(0));
        deep.atoms.insert((PredId(0), vec![Name::Core(0)]));
        let mut tree = LTree::new(root);
        let m = tree.add_child(0, mid);
        tree.add_child(m, deep);
        assert!(!is_consistent(&tree, 2, 2));
    }

    #[test]
    fn unguarded_node_detected() {
        // A child whose names have no covering atom anywhere b-connected:
        // violates condition (5).
        let mut root = NodeLabel::default();
        root.names.insert(Name::Core(0));
        root.core_names.insert(Name::Core(0));
        root.atoms.insert((PredId(0), vec![Name::Core(0)]));
        let mut child = NodeLabel::default();
        child.names.insert(Name::Tree(0));
        child.names.insert(Name::Tree(1));
        // No atom covering {Tree(0), Tree(1)}.
        let mut tree = LTree::new(root);
        tree.add_child(0, child);
        assert!(!is_consistent(&tree, 2, 2));
    }

    #[test]
    fn downward_automaton_agrees_with_checker() {
        let mut voc = Vocabulary::new();
        let t = sample_ctree(&mut voc);
        let good = encode(&t, 4, 2).unwrap();
        // A bad tree: resurrected core name (condition 4).
        let mut root = NodeLabel::default();
        root.names.insert(Name::Core(0));
        root.core_names.insert(Name::Core(0));
        root.atoms.insert((PredId(0), vec![Name::Core(0)]));
        let mut mid = NodeLabel::default();
        mid.names.insert(Name::Tree(0));
        mid.atoms.insert((PredId(0), vec![Name::Tree(0)]));
        let mut deep = NodeLabel::default();
        deep.names.insert(Name::Core(0));
        deep.core_names.insert(Name::Core(0));
        deep.atoms.insert((PredId(0), vec![Name::Core(0)]));
        let mut bad = LTree::new(root);
        let m = bad.add_child(0, mid);
        bad.add_child(m, deep);

        let mut alphabet: Vec<NodeLabel> = Vec::new();
        for n in good.nodes() {
            if !alphabet.contains(good.label(n)) {
                alphabet.push(good.label(n).clone());
            }
        }
        for n in bad.nodes() {
            if !alphabet.contains(bad.label(n)) {
                alphabet.push(bad.label(n).clone());
            }
        }
        let aut = consistency_automaton_downward(&alphabet, 4, 2);
        assert!(aut.accepts(&good).unwrap());
        assert!(!aut.accepts(&bad).unwrap());
        // The automaton is downward: the NTA translation is available.
        assert!(!aut.is_empty(2).unwrap());
    }
}
