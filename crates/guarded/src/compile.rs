//! Compiling a guarded OMQ's *encoding artifact*: the C-tree/2WAPA
//! pipeline of §5 run once, ahead of time, over the critical instance.
//!
//! The artifact certifies the automata-theoretic machinery for one OMQ:
//! the critical instance (every schema atom over a single constant `*`)
//! is unraveled into a C-tree (Lemma 37), encoded as a `Γ_{S,l}`-labeled
//! tree (Lemma 41), checked against the consistency conditions, and the
//! downward consistency 2WAPA of Lemma 23 is translated to an NTA whose
//! emptiness is decided with the budget-aware parallel fixpoint. All of
//! this depends only on the OMQ (not on any request database), so serving
//! layers cache the artifact under the OMQ's canonical key and warm
//! requests skip automaton construction entirely.

use omq_chase::Budget;
use omq_model::{Omq, Term, Vocabulary};

use crate::encoding::{consistency_automaton_downward, encode, is_consistent, NodeLabel};
use crate::guarded_eval::{guarded_certain_answers, Completeness, GuardedConfig};
use crate::unravel::unravel;

/// Budgets and shape bounds for [`compile_encoding`].
#[derive(Clone, Debug)]
pub struct EncodingConfig {
    /// Unraveling depth around the critical constant.
    pub depth: usize,
    /// Worker threads for the NTA emptiness fixpoint (`0` = available
    /// parallelism, `1` = sequential).
    pub threads: usize,
    /// Wall-clock/cancellation budget for the emptiness check. Expiry
    /// leaves [`EncodingArtifact::nonempty`] undecided (`None`) and marks
    /// the artifact incomplete.
    pub budget: Budget,
}

impl Default for EncodingConfig {
    fn default() -> Self {
        EncodingConfig {
            depth: 2,
            threads: 1,
            budget: Budget::unlimited(),
        }
    }
}

/// The compiled encoding of one guarded OMQ (everything downstream of the
/// per-OMQ automaton construction, none of the per-database work).
#[derive(Clone, Debug)]
pub struct EncodingArtifact {
    /// Nodes of the unraveled C-tree.
    pub ctree_nodes: usize,
    /// Distinct `Γ_{S,l}` symbols appearing in the encoding.
    pub alphabet_size: usize,
    /// States of the downward consistency 2WAPA.
    pub twapa_states: usize,
    /// States / transitions of its NTA translation.
    pub nta_states: usize,
    pub nta_transitions: usize,
    /// The NTA itself, kept so cached artifacts can be re-queried without
    /// re-running the alternating→nondeterministic translation.
    pub nta: omq_automata::Nta<NodeLabel>,
    /// Did the encoding pass the five consistency conditions of §5.2?
    pub consistent: bool,
    /// Is the NTA's language nonempty? `None` when the budget expired
    /// before the fixpoint decided.
    pub nonempty: Option<bool>,
    /// Is the OMQ satisfiable? Decided on the critical instance (every
    /// `S`-database maps homomorphically into it and OMQs are closed under
    /// homomorphisms, so `Q` is satisfiable iff `Q(D_crit) ≠ ∅`) with the
    /// stabilizing guarded engine under the compile budget. `Some(false)`
    /// licenses the trivial-containment short-circuit in the anytime ladder
    /// (`Q₁ ⊑ Q₂` vacuously when `Q₁` holds on no database); `None` when the
    /// budget expired before the guarded chase stabilized.
    pub critical_satisfiable: Option<bool>,
    /// True iff every check ran to completion; caches store complete
    /// artifacts only (an incomplete one depends on the budget that
    /// truncated it).
    pub complete: bool,
}

/// Runs the critical-instance → unravel → encode → 2WAPA → NTA pipeline
/// for `omq` under the span `guarded.encode`.
///
/// Returns `None` when the encoding itself is impossible within the
/// paper's name-pool bounds (core larger than `l`, or a bag wider than the
/// schema arity) — a structural property of the OMQ, not a budget effect.
pub fn compile_encoding(
    omq: &Omq,
    voc: &mut Vocabulary,
    cfg: &EncodingConfig,
) -> Option<EncodingArtifact> {
    let _span = omq_obs::span("guarded.encode");
    let (crit, star) = omq_chase::critical_instance(&omq.data_schema, voc);
    let x0 = [Term::Const(star)];
    let unr = unravel(&crit, &x0, cfg.depth, voc);
    // Name-pool parameters: the core is x0's copies (ℓ bounds it), bags are
    // guarded sets, so the maximal predicate arity bounds their width.
    let l = unr.ctree.decomposition.tree.label(0).len().max(1);
    let ar = omq
        .data_schema
        .preds()
        .iter()
        .copied()
        .chain(
            omq.sigma
                .iter()
                .flat_map(|t| t.body.iter().chain(t.head.iter()).map(|a| a.pred)),
        )
        .map(|p| voc.arity(p))
        .max()
        .unwrap_or(1)
        .max(1);
    let enc = encode(&unr.ctree, l, ar)?;
    let consistent = is_consistent(&enc, l, ar);
    let mut alphabet: Vec<NodeLabel> = Vec::new();
    let mut max_branching = 1usize;
    for n in enc.nodes() {
        if !alphabet.contains(enc.label(n)) {
            alphabet.push(enc.label(n).clone());
        }
        max_branching = max_branching.max(enc.children(n).len());
    }
    let aut = consistency_automaton_downward(&alphabet, l, ar);
    let twapa_states = aut.num_states;
    let nta = aut.to_nta(max_branching).ok()?;
    let nonempty = nta
        .is_empty_with(cfg.threads, &cfg.budget)
        .map(|empty| !empty);
    // Critical-instance satisfiability (see `EncodingArtifact` docs): the
    // guarded chase of `D_crit` stabilizes for guarded OMQs, so an empty
    // answer set with an `Exact`/`Stabilized` guarantee certifies that the
    // OMQ holds on *no* database.
    let critical_satisfiable = if cfg.budget.expired() {
        // The guarded engine only polls the budget at round boundaries, so a
        // budget that is already spent could still "decide" a tiny critical
        // instance; report undecided instead so the artifact stays uncached.
        None
    } else {
        let gcfg = GuardedConfig {
            budget: cfg.budget.clone(),
            ..GuardedConfig::default()
        };
        let ans = guarded_certain_answers(omq, &crit, voc, &gcfg);
        if !ans.answers.is_empty() {
            Some(true)
        } else {
            match ans.completeness {
                Completeness::Exact | Completeness::Stabilized => Some(false),
                Completeness::LowerBound => None,
            }
        }
    };
    omq_obs::counter("guarded.encodings_compiled", 1);
    Some(EncodingArtifact {
        ctree_nodes: unr.ctree.decomposition.tree.len(),
        alphabet_size: alphabet.len(),
        twapa_states,
        nta_states: nta.num_states,
        nta_transitions: nta.transitions.len(),
        nta,
        consistent,
        complete: nonempty.is_some() && critical_satisfiable.is_some(),
        nonempty,
        critical_satisfiable,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_model::{parse_program, Schema};

    fn guarded_omq() -> (Omq, Vocabulary) {
        let prog =
            parse_program("G(X,Y,Z), R(X,Y) -> exists W . G(Y,Z,W), R(Y,Z)\nq :- R(X,Y), R(Y,Z)\n")
                .unwrap();
        let voc = prog.voc.clone();
        let schema = Schema::from_preds(["G", "R"].iter().map(|n| voc.pred_id(n).unwrap()));
        (
            Omq::new(schema, prog.tgds.clone(), prog.query("q").unwrap().clone()),
            voc,
        )
    }

    #[test]
    fn critical_instance_encoding_is_consistent_and_nonempty() {
        let (omq, mut voc) = guarded_omq();
        let art = compile_encoding(&omq, &mut voc, &EncodingConfig::default())
            .expect("guarded OMQ encodes");
        assert!(art.consistent, "unraveling encodes consistently");
        assert_eq!(art.nonempty, Some(true), "the encoding itself is accepted");
        assert_eq!(
            art.critical_satisfiable,
            Some(true),
            "q holds on the critical instance"
        );
        assert!(art.complete);
        assert!(art.ctree_nodes >= 1);
        assert!(art.alphabet_size >= 1);
        assert!(art.nta_states >= 1);
    }

    #[test]
    fn compile_is_deterministic_across_vocabulary_clones() {
        let (omq, voc) = guarded_omq();
        let run = || {
            let mut v = voc.clone();
            let a = compile_encoding(&omq, &mut v, &EncodingConfig::default()).unwrap();
            (
                a.ctree_nodes,
                a.alphabet_size,
                a.twapa_states,
                a.nta_states,
                a.nta_transitions,
                a.consistent,
                a.nonempty,
                a.critical_satisfiable,
            )
        };
        assert_eq!(run(), run(), "summary is a pure function of the OMQ");
    }

    #[test]
    fn expired_budget_leaves_emptiness_undecided_but_artifact_sound() {
        let (omq, mut voc) = guarded_omq();
        let cfg = EncodingConfig {
            budget: Budget::deadline_in(std::time::Duration::ZERO),
            ..EncodingConfig::default()
        };
        let art = compile_encoding(&omq, &mut voc, &cfg).expect("encoding still built");
        assert_eq!(art.nonempty, None);
        assert_eq!(
            art.critical_satisfiable, None,
            "satisfiability is undecided under an expired budget"
        );
        assert!(!art.complete, "incomplete artifacts must not be cached");
        assert!(art.consistent, "consistency check is budget-independent");
    }

    #[test]
    fn unsatisfiable_omq_is_detected_on_the_critical_instance() {
        // The query asks for a predicate that is neither in the data schema
        // nor in any tgd head, so no database can ever satisfy it.
        let prog = parse_program(
            "G(X,Y,Z), R(X,Y) -> exists W . G(Y,Z,W), R(Y,Z)\nq :- U(X)\n\
             U(X) -> U(X)\n",
        )
        .unwrap();
        let voc = prog.voc.clone();
        let schema = Schema::from_preds(["G", "R"].iter().map(|n| voc.pred_id(n).unwrap()));
        let omq = Omq::new(schema, prog.tgds.clone(), prog.query("q").unwrap().clone());
        let mut v = voc.clone();
        let art = compile_encoding(&omq, &mut v, &EncodingConfig::default())
            .expect("encoding still built");
        assert_eq!(art.critical_satisfiable, Some(false));
    }
}
