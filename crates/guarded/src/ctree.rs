//! C-trees (Def. 2/Def. 9): databases that are tree-like except for a
//! distinguished cyclic core `C`.
//!
//! Non-containment of guarded OMQs is always witnessed by a C-tree whose
//! core has at most `ar(S ∪ sch(Σ₁)) · |q₁|` elements (Prop. 21); this
//! module provides the data structure, a builder that maintains the
//! witnessing decomposition, and validity checking.

use omq_model::{Atom, Instance, Term};

use crate::tree_decomposition::TreeDecomposition;

/// A database together with a tree decomposition witnessing that it is a
/// `C`-tree: the root bag induces the core `C`, and every non-root bag is
/// guarded by an atom.
#[derive(Clone, Debug)]
pub struct CTree {
    /// The whole database.
    pub instance: Instance,
    /// The witnessing decomposition; the root bag spans `dom(C)`.
    pub decomposition: TreeDecomposition,
}

impl CTree {
    /// Starts a C-tree from its core.
    pub fn from_core(core: Instance) -> Self {
        let dom = core.active_domain();
        CTree {
            instance: core,
            decomposition: TreeDecomposition::new(dom),
        }
    }

    /// Adds a guarded atom below the decomposition node `parent`: the atom's
    /// terms form the new bag, so the atom guards it by construction.
    /// Returns the new node id.
    ///
    /// For the decomposition to remain valid, terms shared with the rest of
    /// the database must already occur in the parent bag (connectedness);
    /// this is checked and panics otherwise, since it is a construction bug.
    pub fn add_guarded_atom(&mut self, parent: usize, atom: Atom) -> usize {
        let bag: Vec<Term> = {
            let mut seen = Vec::new();
            for &t in &atom.args {
                if !seen.contains(&t) {
                    seen.push(t);
                }
            }
            seen
        };
        let parent_bag = self.decomposition.tree.label(parent).clone();
        for &t in &bag {
            let occurs_elsewhere = self.instance.active_domain().contains(&t);
            assert!(
                !occurs_elsewhere || parent_bag.contains(&t),
                "shared term must come from the parent bag"
            );
        }
        self.instance.insert(atom);
        self.decomposition.add_bag(parent, bag)
    }

    /// The core `C`: the subinstance induced by the root bag.
    pub fn core(&self) -> Instance {
        let root_bag = self.decomposition.tree.label(0);
        Instance::from_atoms(
            self.instance
                .atoms()
                .iter()
                .filter(|a| a.args.iter().all(|t| root_bag.contains(t)))
                .cloned(),
        )
    }

    /// `|dom(C)|`, the diameter.
    pub fn diameter(&self) -> usize {
        self.decomposition.tree.label(0).len()
    }

    /// Checks the C-tree conditions of Def. 9: the decomposition is valid
    /// for the instance and guarded except for the root.
    pub fn validate(&self) -> bool {
        self.decomposition.is_valid_for(&self.instance)
            && self.decomposition.guarded_except(&self.instance, &[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_model::Vocabulary;

    fn c(voc: &mut Vocabulary, n: &str) -> Term {
        Term::Const(voc.constant(n))
    }

    #[test]
    fn build_and_validate() {
        let mut voc = Vocabulary::new();
        let r = voc.pred("R", 2);
        let (a, b) = (c(&mut voc, "a"), c(&mut voc, "b"));
        // Core: a cycle R(a,b), R(b,a).
        let core = Instance::from_atoms([Atom::new(r, vec![a, b]), Atom::new(r, vec![b, a])]);
        let mut t = CTree::from_core(core.clone());
        // Tree part: a path hanging off b.
        let (x, y) = (c(&mut voc, "x"), c(&mut voc, "y"));
        let n1 = t.add_guarded_atom(0, Atom::new(r, vec![b, x]));
        t.add_guarded_atom(n1, Atom::new(r, vec![x, y]));
        assert!(t.validate());
        assert_eq!(t.core(), core);
        assert_eq!(t.diameter(), 2);
        assert_eq!(t.instance.len(), 4);
    }

    #[test]
    #[should_panic(expected = "shared term")]
    fn disconnected_attachment_panics() {
        let mut voc = Vocabulary::new();
        let r = voc.pred("R", 2);
        let (a, b) = (c(&mut voc, "a"), c(&mut voc, "b"));
        let core = Instance::from_atoms([Atom::new(r, vec![a, b])]);
        let mut t = CTree::from_core(core);
        let x = c(&mut voc, "x");
        let n1 = t.add_guarded_atom(0, Atom::new(r, vec![b, x]));
        // Attaching an atom over `a` below n1 breaks connectedness: `a` is
        // not in n1's bag.
        t.add_guarded_atom(n1, Atom::new(r, vec![a, x]));
    }

    #[test]
    fn empty_core_is_a_plain_tree() {
        let mut voc = Vocabulary::new();
        let p = voc.pred("P", 1);
        let a = c(&mut voc, "a");
        let mut t = CTree::from_core(Instance::new());
        // With an empty core the root bag is empty; children are fresh.
        let n = t.decomposition.add_bag(0, vec![a]);
        t.instance.insert(Atom::new(p, vec![a]));
        let _ = n;
        assert!(t.validate());
        assert_eq!(t.diameter(), 0);
    }
}
