//! Guarded OMQ evaluation (Prop. 1: `Eval(G, (U)CQ)` is decidable although
//! the chase may be infinite).
//!
//! Strategy: run the restricted chase level-by-level (by null depth) and
//! watch the set of *atom types* — atoms with their nulls canonicalized per
//! atom. Under guarded tgds every atom's terms come from a single guard
//! atom plus fresh nulls, so once no new type appears for a window of
//! consecutive depth levels the deeper chase only repeats existing
//! neighborhoods up to isomorphism (the regularity exploited by
//! Calì–Gottlob–Kifer's "Taming the infinite chase"); a match of a CQ with
//! `|q|` atoms spans at most `|q|` levels, so evaluating after
//! stabilization plus a `|q| + 1` window is complete. If the chase reaches
//! an actual fixpoint first, the answer is exact outright.
//!
//! Every returned answer is *sound* (certain); the [`Completeness`] tag
//! states which guarantee the run achieved.

use std::collections::HashSet;

use omq_chase::chase::{chase, ChaseConfig};
use omq_chase::eval::eval_ucq;
use omq_model::{Atom, ConstId, Instance, Omq, Term, Vocabulary};

/// Budgets for guarded evaluation.
#[derive(Clone, Debug)]
pub struct GuardedConfig {
    /// Hard cap on the chase's null depth.
    pub max_depth: usize,
    /// Step budget per chase run.
    pub max_steps: usize,
    /// Stabilization window; `None` = `max |qᵢ| + 1` (the default from the
    /// theory sketch above).
    pub window: Option<usize>,
    /// Wall-clock/cancellation budget, propagated into every inner chase
    /// run and polled between deepening rounds. Expiry degrades the result
    /// to `Completeness::LowerBound` (sound, possibly incomplete).
    pub budget: omq_chase::Budget,
}

impl Default for GuardedConfig {
    fn default() -> Self {
        GuardedConfig {
            max_depth: 24,
            max_steps: 500_000,
            window: None,
            budget: omq_chase::Budget::unlimited(),
        }
    }
}

/// The guarantee attached to a guarded evaluation result.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Completeness {
    /// The chase terminated: the answer equals `Q(D)`.
    Exact,
    /// The atom-type set stabilized for the full window: complete under the
    /// regularity property of the guarded chase.
    Stabilized,
    /// Budgets exhausted first: the answer is a sound subset of `Q(D)`.
    LowerBound,
}

/// Result of guarded evaluation.
#[derive(Clone, Debug)]
pub struct GuardedAnswers {
    /// The certain answers computed (always sound).
    pub answers: HashSet<Vec<ConstId>>,
    /// Which guarantee the run achieved.
    pub completeness: Completeness,
    /// Null depth actually chased to.
    pub depth_used: usize,
}

/// The canonical *type* of an atom: nulls renamed by first occurrence
/// within the atom, constants kept.
fn atom_type(a: &Atom) -> (omq_model::PredId, Vec<Term>) {
    let mut seen: Vec<omq_model::NullId> = Vec::new();
    let args = a
        .args
        .iter()
        .map(|&t| match t {
            Term::Null(n) => {
                let idx = match seen.iter().position(|&m| m == n) {
                    Some(i) => i,
                    None => {
                        seen.push(n);
                        seen.len() - 1
                    }
                };
                Term::Null(omq_model::NullId(idx as u32))
            }
            other => other,
        })
        .collect();
    (a.pred, args)
}

fn type_set(inst: &Instance) -> HashSet<(omq_model::PredId, Vec<Term>)> {
    inst.atoms().iter().map(atom_type).collect()
}

/// Evaluates a guarded OMQ with the stabilization strategy described in the
/// module docs.
pub fn guarded_certain_answers(
    omq: &Omq,
    db: &Instance,
    voc: &mut Vocabulary,
    cfg: &GuardedConfig,
) -> GuardedAnswers {
    let window = cfg
        .window
        .unwrap_or_else(|| omq.query.max_disjunct_size() + 1);
    let mut prev_types: Option<HashSet<_>> = None;
    let mut stable_for = 0usize;
    let mut depth = 1usize;
    loop {
        let mut chase_cfg = ChaseConfig::with_depth(depth);
        chase_cfg.max_steps = cfg.max_steps;
        chase_cfg.budget = cfg.budget.clone();
        let out = chase(db, &omq.sigma, voc, &chase_cfg);
        let answers = eval_ucq(&omq.query, &out.instance);
        if out.complete {
            return GuardedAnswers {
                answers,
                completeness: Completeness::Exact,
                depth_used: depth,
            };
        }
        // An expired budget truncates the chase mid-level; the type set of
        // the truncated instance can coincide with the previous level's and
        // masquerade as stabilization, so the check must come first. The
        // answers found so far stay sound — degrade, don't discard.
        if cfg.budget.expired() {
            return GuardedAnswers {
                answers,
                completeness: Completeness::LowerBound,
                depth_used: depth,
            };
        }
        let types = type_set(&out.instance);
        match &prev_types {
            Some(p) if *p == types => stable_for += 1,
            _ => stable_for = 0,
        }
        prev_types = Some(types);
        if stable_for >= window {
            return GuardedAnswers {
                answers,
                completeness: Completeness::Stabilized,
                depth_used: depth,
            };
        }
        if depth >= cfg.max_depth || out.steps >= cfg.max_steps {
            return GuardedAnswers {
                answers,
                completeness: Completeness::LowerBound,
                depth_used: depth,
            };
        }
        depth += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_model::{parse_program, parse_tgd, Schema, Ucq};

    fn db(voc: &mut Vocabulary, facts: &[&str]) -> Instance {
        let mut inst = Instance::new();
        for f in facts {
            let t = parse_tgd(voc, &format!("true -> {f}")).unwrap();
            for a in t.head {
                inst.insert(a);
            }
        }
        inst
    }

    fn omq(text: &str, data: &[&str], query: &str) -> (Omq, Vocabulary) {
        let prog = parse_program(text).unwrap();
        let voc = prog.voc.clone();
        let schema = Schema::from_preds(data.iter().map(|n| voc.pred_id(n).unwrap()));
        (
            Omq::new(
                schema,
                prog.tgds.clone(),
                prog.query(query).unwrap().clone(),
            ),
            voc,
        )
    }

    #[test]
    fn terminating_guarded_is_exact() {
        let (q, mut voc) = omq(
            "Emp(X) -> exists D . Works(X,D)\n\
             q(X) :- Works(X,D)\n",
            &["Emp"],
            "q",
        );
        let d = db(&mut voc, &["Emp(alice)"]);
        let r = guarded_certain_answers(&q, &d, &mut voc, &GuardedConfig::default());
        assert_eq!(r.completeness, Completeness::Exact);
        assert_eq!(r.answers.len(), 1);
    }

    /// Example 1 of the paper: infinite chase (linear ⊆ guarded).
    /// Rewriting-based evaluation is the oracle: q(x) holds iff P(x) ∨ T(x).
    #[test]
    fn infinite_chase_stabilizes_and_matches_rewriting_oracle() {
        let (q, mut voc) = omq(
            "P(X) -> exists Y . R(X,Y)\n\
             R(X,Y) -> P(Y)\n\
             T(X) -> P(X)\n\
             q(X) :- R(X,Y), P(Y)\n",
            &["P", "T"],
            "q",
        );
        let d = db(&mut voc, &["T(a)", "P(b)", "Z9(c)"]);
        // Keep only schema preds (Z9 sneaks in an unrelated constant).
        let d = d.restrict_to_schema(&q.data_schema);
        let r = guarded_certain_answers(&q, &d, &mut voc, &GuardedConfig::default());
        assert_ne!(r.completeness, Completeness::LowerBound);
        let oracle =
            omq_rewrite::certain_answers_via_rewriting(&q, &d, &mut voc, &Default::default())
                .unwrap();
        assert_eq!(r.answers, oracle);
        assert_eq!(r.answers.len(), 2);
    }

    /// A genuinely guarded (non-linear) ontology with infinite chase.
    #[test]
    fn guarded_join_rule() {
        let (q, mut voc) = omq(
            "G(X,Y), P(X) -> exists Z . G(Y,Z)\n\
             G(X,Y), P(X) -> P(Y)\n\
             q :- G(X,Y), G(Y,Z), G(Z,W)\n",
            &["G", "P"],
            "q",
        );
        let d = db(&mut voc, &["G(a,b)", "P(a)"]);
        let r = guarded_certain_answers(&q, &d, &mut voc, &GuardedConfig::default());
        assert_ne!(r.completeness, Completeness::LowerBound);
        // Chain grows G(a,b), G(b,⊥1), G(⊥1,⊥2), ...: q holds.
        assert_eq!(r.answers.len(), 1);
    }

    /// Negative case: the query never becomes true, and stabilization
    /// correctly reports the empty answer as complete.
    #[test]
    fn stabilized_negative_answer() {
        let (q, mut voc) = omq(
            "P(X) -> exists Y . R(X,Y), P(Y)\n\
             q :- R(X,X)\n",
            &["P"],
            "q",
        );
        let d = db(&mut voc, &["P(a)"]);
        let r = guarded_certain_answers(&q, &d, &mut voc, &GuardedConfig::default());
        assert_eq!(r.completeness, Completeness::Stabilized);
        assert!(r.answers.is_empty());
    }

    #[test]
    fn budget_exhaustion_reported() {
        let (q, mut voc) = omq(
            "P(X) -> exists Y . R(X,Y), P(Y)\n\
             q :- R(X,X)\n",
            &["P"],
            "q",
        );
        let d = db(&mut voc, &["P(a)"]);
        let cfg = GuardedConfig {
            max_depth: 2,
            window: Some(50),
            ..Default::default()
        };
        let r = guarded_certain_answers(&q, &d, &mut voc, &cfg);
        assert_eq!(r.completeness, Completeness::LowerBound);
    }

    /// An expired wall-clock budget must degrade to `LowerBound`, never to
    /// a (false) `Stabilized`/`Exact` claim over a truncated chase.
    #[test]
    fn expired_budget_degrades_to_lower_bound() {
        let (q, mut voc) = omq(
            "P(X) -> exists Y . R(X,Y), P(Y)\n\
             q :- R(X,X)\n",
            &["P"],
            "q",
        );
        let d = db(&mut voc, &["P(a)"]);
        let cfg = GuardedConfig {
            budget: omq_chase::Budget::deadline_in(std::time::Duration::ZERO),
            ..Default::default()
        };
        let r = guarded_certain_answers(&q, &d, &mut voc, &cfg);
        assert_eq!(r.completeness, Completeness::LowerBound);
        assert!(r.answers.is_empty(), "sound: nothing falsely derived");
    }

    #[test]
    fn empty_query_union_is_unsatisfiable() {
        let (mut q, mut voc) = omq("P(X) -> P(X)\nq :- P(X)\n", &["P"], "q");
        q.query = Ucq::new(0, vec![]);
        let d = db(&mut voc, &["P(a)"]);
        let r = guarded_certain_answers(&q, &d, &mut voc, &GuardedConfig::default());
        assert!(r.answers.is_empty());
    }
}
