//! Guarded unraveling (Lemma 37): every instance unravels, around a chosen
//! set `X₀`, into a C-tree that maps homomorphically back into the
//! original — the construction behind the tree-witness property
//! (Prop. 21).
//!
//! The full unraveling is infinite; we materialize it breadth-first up to a
//! configurable depth. Nodes of the unraveling are sequences
//! `X₀X₁⋯Xₙ` of guarded sets; an element `a` is *represented* at a node
//! when it belongs to the node's set, and two occurrences denote the same
//! element of the unraveling iff the element is represented everywhere on
//! the connecting path (a-equivalence).

use std::collections::HashMap;

use omq_model::{Instance, Term, Vocabulary};

use crate::ctree::CTree;

/// The result of a (depth-bounded) guarded unraveling.
#[derive(Clone, Debug)]
pub struct Unraveling {
    /// The unraveled database, as a C-tree with core induced by `X₀`.
    pub ctree: CTree,
    /// The homomorphism back into the original instance: unraveled term →
    /// original term.
    pub hom: HashMap<Term, Term>,
}

/// All guarded sets of `inst`: the term sets of its atoms (deduplicated).
fn guarded_sets(inst: &Instance) -> Vec<Vec<Term>> {
    let mut out: Vec<Vec<Term>> = Vec::new();
    for a in inst.atoms() {
        let mut set: Vec<Term> = Vec::new();
        for &t in &a.args {
            if !set.contains(&t) {
                set.push(t);
            }
        }
        set.sort();
        if !out.contains(&set) {
            out.push(set);
        }
    }
    out
}

/// Unravels `inst` around the terms `x0` up to the given tree depth.
///
/// Returns the C-tree (whose core is the subinstance on `x0`'s copies) and
/// the witnessing homomorphism. Every atom of `inst` whose terms lie in a
/// guarded set reachable within `depth` steps is represented.
pub fn unravel(inst: &Instance, x0: &[Term], depth: usize, voc: &mut Vocabulary) -> Unraveling {
    let gsets = guarded_sets(inst);
    // Each unraveling node: (parent, local map original-term -> fresh term).
    struct Node {
        parent: Option<usize>,
        map: HashMap<Term, Term>,
        depth: usize,
    }
    let mut hom: HashMap<Term, Term> = HashMap::new();
    let fresh = |orig: Term, voc: &mut Vocabulary, hom: &mut HashMap<Term, Term>| {
        let t = Term::Const(voc.fresh_const("u"));
        hom.insert(t, orig);
        t
    };

    // Root node: fresh copies of x0.
    let mut root_map = HashMap::new();
    for &t in x0 {
        root_map.entry(t).or_insert_with(|| fresh(t, voc, &mut hom));
    }
    let mut nodes = vec![Node {
        parent: None,
        map: root_map,
        depth: 0,
    }];

    // Breadth-first expansion: a child per guarded set overlapping the
    // node's represented set (elements shared keep their copies; new
    // elements get fresh copies).
    let mut frontier = vec![0usize];
    while let Some(ni) = frontier.pop() {
        if nodes[ni].depth >= depth {
            continue;
        }
        for gs in &gsets {
            let parent_map = nodes[ni].map.clone();
            // Only expand into guarded sets sharing at least one element
            // (others belong to different components of the unraveling).
            if !gs.iter().any(|t| parent_map.contains_key(t)) && nodes[ni].parent.is_some() {
                continue;
            }
            // Skip the trivial re-expansion into a subset of the parent.
            if gs.iter().all(|t| parent_map.contains_key(t)) {
                continue;
            }
            let mut map = HashMap::new();
            for &t in gs {
                let copy = match parent_map.get(&t) {
                    Some(&c) => c,
                    None => fresh(t, voc, &mut hom),
                };
                map.insert(t, copy);
            }
            nodes.push(Node {
                parent: Some(ni),
                map,
                depth: nodes[ni].depth + 1,
            });
            frontier.push(nodes.len() - 1);
        }
    }

    // Materialize: for each node, copy all original atoms over its set.
    let mut core = Instance::new();
    for a in inst.atoms() {
        if a.args.iter().all(|t| nodes[0].map.contains_key(t)) {
            core.insert(a.map_terms(|t| nodes[0].map[&t]));
        }
    }
    let mut ctree = CTree::from_core(core);
    let mut dec_id: Vec<usize> = vec![0];
    for (i, node) in nodes.iter().enumerate().skip(1) {
        let bag: Vec<Term> = {
            let mut b: Vec<Term> = node.map.values().copied().collect();
            b.sort();
            b
        };
        let parent_dec = dec_id[node.parent.expect("non-root")];
        let id = ctree.decomposition.add_bag(parent_dec, bag);
        dec_id.push(id);
        let _ = i;
        for a in inst.atoms() {
            if a.args.iter().all(|t| node.map.contains_key(t)) {
                ctree.instance.insert(a.map_terms(|t| node.map[&t]));
            }
        }
    }

    Unraveling { ctree, hom }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_chase::hom::{find_hom, Assignment};
    use omq_model::{Atom, Cq, VarId};

    fn cycle_instance(voc: &mut Vocabulary) -> (Instance, Vec<Term>) {
        let r = voc.pred("R", 2);
        let (a, b, c) = (
            Term::Const(voc.constant("a")),
            Term::Const(voc.constant("b")),
            Term::Const(voc.constant("c")),
        );
        let inst = Instance::from_atoms([
            Atom::new(r, vec![a, b]),
            Atom::new(r, vec![b, c]),
            Atom::new(r, vec![c, a]),
        ]);
        (inst, vec![a, b])
    }

    #[test]
    fn unraveling_is_a_valid_ctree() {
        let mut voc = Vocabulary::new();
        let (inst, x0) = cycle_instance(&mut voc);
        let u = unravel(&inst, &x0, 3, &mut voc);
        assert!(u.ctree.validate(), "decomposition conditions hold");
        assert_eq!(u.ctree.diameter(), 2);
    }

    #[test]
    fn unraveling_maps_homomorphically_back() {
        let mut voc = Vocabulary::new();
        let (inst, x0) = cycle_instance(&mut voc);
        let u = unravel(&inst, &x0, 4, &mut voc);
        for atom in u.ctree.instance.atoms() {
            let back = atom.map_terms(|t| u.hom[&t]);
            assert!(inst.contains(&back), "image atom must exist in original");
        }
    }

    #[test]
    fn unraveling_breaks_cycles() {
        let mut voc = Vocabulary::new();
        let (inst, x0) = cycle_instance(&mut voc);
        let u = unravel(&inst, &x0, 6, &mut voc);
        // The 3-cycle query matches the original…
        let r = voc.pred_id("R").unwrap();
        let (x, y, z) = (VarId(900), VarId(901), VarId(902));
        let tri = Cq::boolean(vec![
            Atom::new(r, vec![Term::Var(x), Term::Var(y)]),
            Atom::new(r, vec![Term::Var(y), Term::Var(z)]),
            Atom::new(r, vec![Term::Var(z), Term::Var(x)]),
        ]);
        assert!(find_hom(&tri.body, &inst, &Assignment::new()).is_some());
        // …but any triangle in the unraveling must sit inside one bag; the
        // tree part only has 2-element bags, so the triangle can only map
        // into the core if at all. With core {a,b} there is no triangle.
        assert!(find_hom(&tri.body, &u.ctree.instance, &Assignment::new()).is_none());
    }

    #[test]
    fn depth_zero_keeps_only_the_core() {
        let mut voc = Vocabulary::new();
        let (inst, x0) = cycle_instance(&mut voc);
        let u = unravel(&inst, &x0, 0, &mut voc);
        // Core over copies of {a, b}: just R(a,b).
        assert_eq!(u.ctree.instance.len(), 1);
    }
}
