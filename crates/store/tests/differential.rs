//! Differential + property suite for the versioned store: randomized
//! assert/retract/compact/snapshot sequences must yield certain answers
//! **byte-identical** (rendered and sorted exactly as the serve tier
//! renders them) to a from-scratch chase of the materialized instance —
//! after every mutation, and retroactively at every pinned snapshot.
//!
//! The chase engine itself is single-threaded (the thread knob lives in
//! the automata/serve tiers, exercised by the serve differential suite at
//! `threads ∈ {1, auto}`), so byte-identity here pins the maintenance
//! algebra: watermark resumes, DRed cones, and compaction are pure
//! storage/fixpoint rewrites that never move an answer.

use std::collections::HashSet;

use proptest::prelude::*;

use omq_chase::{chase, eval_ucq, ChaseConfig};
use omq_model::{parse_program, Atom, Instance, Term, Tgd, Ucq, Vocabulary};
use omq_store::{MaintainedStore, StoreConfig};

/// Transitive closure over a small universe: every op sequence terminates
/// and the from-scratch oracle is cheap.
const PROGRAM: &str = "E(X,Y) -> T(X,Y)\nE(X,Y), T(Y,Z) -> T(X,Z)\n\
                       q(X,Y) :- T(X,Y)\n\
                       seed :- E(c0,c1), E(c1,c2), E(c2,c3), E(c3,c4), E(c4,c5)\n";

/// The universe of edges the generated sequences draw from.
const UNIVERSE: usize = 6;

struct Setup {
    sigma: Vec<Tgd>,
    query: Ucq,
    voc: Vocabulary,
    pool: Vec<Atom>,
}

fn setup() -> Setup {
    let prog = parse_program(PROGRAM).unwrap();
    let voc = prog.voc.clone();
    let e = voc.pred_id("E").unwrap();
    let consts: Vec<_> = (0..UNIVERSE)
        .map(|i| voc.const_id(&format!("c{i}")).unwrap())
        .collect();
    let mut pool = Vec::new();
    for &a in &consts {
        for &b in &consts {
            pool.push(Atom::new(e, vec![Term::Const(a), Term::Const(b)]));
        }
    }
    Setup {
        sigma: prog.tgds.clone(),
        query: prog.query("q").unwrap().clone(),
        voc: prog.voc,
        pool,
    }
}

/// Renders answers exactly as the serve tier does: constant names, sorted,
/// joined — the byte string the differential compares.
fn render(voc: &Vocabulary, answers: &HashSet<Vec<omq_model::ConstId>>) -> String {
    let mut rows: Vec<Vec<&str>> = answers
        .iter()
        .map(|row| row.iter().map(|&c| voc.const_name(c)).collect())
        .collect();
    rows.sort();
    rows.iter()
        .map(|r| r.join(","))
        .collect::<Vec<_>>()
        .join(";")
}

/// From-scratch oracle: chase the bare EDB and evaluate.
fn scratch_answers(s: &Setup, edb: &HashSet<Atom>) -> String {
    let db = Instance::from_atoms(edb.iter().cloned());
    let out = chase(&db, &s.sigma, &mut s.voc.clone(), &ChaseConfig::default());
    assert!(out.complete, "oracle chase terminates on TC");
    render(&s.voc, &eval_ucq(&s.query, &out.instance))
}

/// One scripted operation over the store.
#[derive(Debug, Clone)]
enum Op {
    Assert(usize),
    Retract(usize),
    Compact,
    Snapshot,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..8, 0usize..UNIVERSE * UNIVERSE).prop_map(|(kind, idx)| match kind {
        0..=3 => Op::Assert(idx),
        4 | 5 => Op::Retract(idx),
        6 => Op::Compact,
        _ => Op::Snapshot,
    })
}

proptest! {
    /// After every mutation the maintained fixpoint's rendered answers are
    /// byte-identical to the from-scratch oracle; every pinned snapshot
    /// replays byte-identically at the end, across interleaved compactions.
    #[test]
    fn randomized_sequences_match_from_scratch(
        ops in prop::collection::vec(op_strategy(), 1..40),
        threshold in (0u8..4).prop_map(|k| [0usize, 1, 4, 16][k as usize]),
    ) {
        let s = setup();
        let mut voc = s.voc.clone();
        let cfg = ChaseConfig::default();
        let mut ms = MaintainedStore::new(StoreConfig { compact_threshold: threshold });
        let mut edb: HashSet<Atom> = HashSet::new();
        // (version, expected bytes) for every snapshot taken.
        let mut pinned: Vec<(u64, String)> = Vec::new();
        for op in &ops {
            match op {
                Op::Assert(i) => {
                    let fact = s.pool[*i].clone();
                    ms.assert_facts(std::slice::from_ref(&fact), &s.sigma, &mut voc, &cfg).unwrap();
                    edb.insert(fact);
                }
                Op::Retract(i) => {
                    let fact = s.pool[*i].clone();
                    ms.retract_facts(std::slice::from_ref(&fact), &s.sigma, &mut voc, &cfg).unwrap();
                    edb.remove(&fact);
                }
                Op::Compact => { ms.compact(); }
                Op::Snapshot => {
                    let v = ms.snapshot();
                    pinned.push((v, scratch_answers(&s, &edb)));
                }
            }
            let got = ms.evaluate(None, &s.query, &s.sigma, &mut voc, &cfg).unwrap();
            prop_assert!(got.complete);
            prop_assert_eq!(render(&s.voc, &got.answers), scratch_answers(&s, &edb));
        }
        // Pinned versions replay byte-identically after all later mutations
        // and compactions.
        for (v, expect) in &pinned {
            let at = ms.evaluate(Some(*v), &s.query, &s.sigma, &mut voc, &cfg).unwrap();
            prop_assert!(at.complete);
            prop_assert_eq!(&render(&s.voc, &at.answers), expect);
        }
    }

    /// Compaction is invisible: the materialized head's cardinality sketch
    /// (which drives join planning) and the query answers are unchanged by
    /// a forced novelty→base merge.
    #[test]
    fn compaction_never_changes_sketch_or_answers(
        ops in prop::collection::vec(op_strategy(), 1..30),
    ) {
        let s = setup();
        let mut voc = s.voc.clone();
        let cfg = ChaseConfig::default();
        let mut ms = MaintainedStore::new(StoreConfig { compact_threshold: 0 });
        for op in &ops {
            match op {
                Op::Assert(i) => {
                    ms.assert_facts(std::slice::from_ref(&s.pool[*i]), &s.sigma, &mut voc, &cfg).unwrap();
                }
                Op::Retract(i) => {
                    ms.retract_facts(std::slice::from_ref(&s.pool[*i]), &s.sigma, &mut voc, &cfg).unwrap();
                }
                // Threshold 0: compaction only ever runs where this test
                // forces it, below.
                Op::Compact | Op::Snapshot => {}
            }
        }
        let head = ms.head();
        let before_db = ms.store().materialize(head).unwrap();
        let before_sketch = before_db.card_sketch();
        let before = ms.evaluate(None, &s.query, &s.sigma, &mut voc, &cfg).unwrap();
        ms.compact();
        let after_db = ms.store().materialize(head).unwrap();
        prop_assert_eq!(before_db, after_db.clone());
        prop_assert_eq!(before_sketch, after_db.card_sketch());
        let after = ms.evaluate(None, &s.query, &s.sigma, &mut voc, &cfg).unwrap();
        prop_assert_eq!(
            render(&s.voc, &before.answers),
            render(&s.voc, &after.answers)
        );
    }
}
