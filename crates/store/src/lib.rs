//! `omq-store`: an immutable, versioned fact store with an incrementally
//! maintained chase fixpoint.
//!
//! The store keeps databases the way ledger-style databases (Datomic,
//! Fluree) do: a **frozen base** of per-predicate sorted index runs plus an
//! append-only list of **novelty** overlays, one [`Delta`] per version.
//! Reads at version `v` replay the novelty on top of the base; once the
//! novelty grows past a threshold it is **compacted** into a new frozen
//! base, establishing a floor below which unpinned versions become
//! unreadable ([`StoreError::Stale`]). [`VersionedStore::snapshot`] pins
//! the current version against compaction so `evaluate`-at-version stays
//! answerable for as long as the handle is held.
//!
//! On top of the raw store, [`MaintainedStore`] keeps the chase fixpoint of
//! the head version **incrementally maintained**:
//!
//! * **Assertions** enter as a new delta generation and resume the
//!   semi-naive fixpoint from the generation watermark
//!   ([`omq_chase::resume_chase`]) — the prior fixpoint is never re-chased.
//! * **Retractions** run DRed (delete-and-rederive): the support cone of
//!   the retracted facts is over-deleted by a forward pass over the
//!   recorded [`DerivationStep`] log, then a delta-0 resume re-derives
//!   every over-deleted atom that still has an alternative derivation.
//!   Restricted-chase head-satisfaction makes the re-derivation pass skip
//!   everything already justified, so the pass is cheap when cones are
//!   small.
//!
//! Because the restricted chase is order-dependent, the maintained instance
//! need not be *syntactically* identical to a from-scratch chase of the
//! same database — but both are universal models of `(D, Σ)`, so certain
//! answers (constant-only query answers) agree exactly. The differential
//! tests in `tests/` pin that equivalence byte-for-byte on rendered
//! answers.

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::fmt;

use omq_chase::{chase, eval_ucq, resume_chase, ChaseConfig, DerivationStep};
use omq_model::{Atom, ConstId, Instance, PredId, Term, Tgd, Ucq, Vocabulary};

/// A ground fact in code form: one [`Term::code`] per argument position.
pub type Row = Vec<i64>;

/// The novelty overlay producing one version: facts asserted into and
/// retracted from the previous version. Only *effective* changes are
/// recorded (asserting a present fact or retracting an absent one leaves
/// the delta untouched, though the version still advances).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Delta {
    pub asserts: Vec<(PredId, Row)>,
    pub retracts: Vec<(PredId, Row)>,
}

impl Delta {
    fn rows(&self) -> usize {
        self.asserts.len() + self.retracts.len()
    }
}

/// Errors surfaced by version-addressed reads and ground-fact ingestion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The requested version predates the compaction floor and no snapshot
    /// pinned it: the novelty needed to reconstruct it has been merged away.
    Stale { version: u64, floor: u64 },
    /// The requested version is beyond the store's head.
    Future { version: u64, head: u64 },
    /// A fact passed to assert/retract contains a variable or null.
    NotGround { atom: String },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Stale { version, floor } => write!(
                f,
                "version {version} is below the compaction floor {floor} and was not pinned"
            ),
            StoreError::Future { version, head } => {
                write!(f, "version {version} does not exist yet (head is {head})")
            }
            StoreError::NotGround { atom } => {
                write!(f, "fact {atom} is not ground")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Tuning knobs for [`VersionedStore`].
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Total novelty rows (asserts + retracts across all pending deltas)
    /// that trigger a compaction after a mutation. `0` disables automatic
    /// compaction (tests drive [`VersionedStore::compact`] by hand).
    pub compact_threshold: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            compact_threshold: 64,
        }
    }
}

/// Counters for store mutations and fixpoint maintenance, threaded through
/// the serve `stats` op and mirrored into the omq-obs counter taxonomy
/// (`store.assert`, `store.retract`, `store.compact`, `chase.incremental`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Assert operations (each advances the version by one).
    pub asserts: u64,
    /// Retract operations.
    pub retracts: u64,
    /// Facts that actually entered the store (not already present).
    pub facts_asserted: u64,
    /// Facts that actually left the store (present at the head).
    pub facts_retracted: u64,
    /// Snapshot handles taken.
    pub snapshots: u64,
    /// Novelty→base merges performed.
    pub compactions: u64,
    /// Rows currently sitting in novelty overlays (gauge).
    pub novelty_size: u64,
    /// Instance atoms removed by DRed over-deletion (support cones).
    pub dred_deleted: u64,
    /// Triggers re-fired by the DRed re-derivation pass.
    pub rederived: u64,
    /// Fixpoint maintenances that resumed from a watermark instead of
    /// re-chasing from scratch.
    pub incremental_resumes: u64,
    /// Fixpoint constructions that had to chase from scratch.
    pub full_rechases: u64,
    /// DRed support-cone passes actually run (one per retract *batch*, not
    /// per retract call — see [`MaintainedStore::retract_batch`]).
    pub cone_batches: u64,
    /// Retract versions that shared a batch's cone pass instead of paying
    /// their own (`versions_in_batch - 1`, summed over batches).
    pub cone_reuses: u64,
}

fn ground_row(atom: &Atom) -> Result<Row, StoreError> {
    if atom.args.iter().all(|t| matches!(t, Term::Const(_))) {
        Ok(atom.args.iter().map(|t| t.code()).collect())
    } else {
        Err(StoreError::NotGround {
            atom: format!("{atom:?}"),
        })
    }
}

fn insert_sorted(rows: &mut Vec<Row>, row: Row) {
    if let Err(i) = rows.binary_search(&row) {
        rows.insert(i, row);
    }
}

fn remove_sorted(rows: &mut Vec<Row>, row: &Row) {
    if let Ok(i) = rows.binary_search(row) {
        rows.remove(i);
    }
}

/// The raw versioned store: frozen base runs + novelty overlays + pins.
///
/// Versions are dense `floor..=head` integers; every mutation (assert or
/// retract, effective or not) advances the head by one. The base always
/// materializes exactly version `floor`.
#[derive(Clone, Debug, Default)]
pub struct VersionedStore {
    /// Frozen, per-predicate sorted index runs as of version `floor`.
    base: BTreeMap<PredId, Vec<Row>>,
    /// Version the base materializes; versions below it are gone.
    floor: u64,
    /// `novelty[i]` is the overlay producing version `floor + i + 1`.
    novelty: Vec<Delta>,
    /// The head state, maintained incrementally: `base` + all novelty.
    /// Gives O(log n) membership for effective-change detection and DRed's
    /// surviving-EDB test without replaying overlays.
    head_state: BTreeMap<PredId, BTreeSet<Row>>,
    /// Pinned versions (snapshot handles) → pin count. Compaction never
    /// advances the floor past the smallest pinned version.
    pins: BTreeMap<u64, usize>,
    cfg: StoreConfig,
    stats: StoreStats,
}

/// Result of a mutation: the new head version plus the facts that actually
/// changed (deduplicated against the prior head state).
#[derive(Clone, Debug)]
pub struct MutationOutcome {
    pub version: u64,
    pub changed: Vec<Atom>,
}

impl VersionedStore {
    pub fn new(cfg: StoreConfig) -> Self {
        VersionedStore {
            cfg,
            ..VersionedStore::default()
        }
    }

    /// The newest version.
    pub fn head(&self) -> u64 {
        self.floor + self.novelty.len() as u64
    }

    /// The oldest version still materializable.
    pub fn floor(&self) -> u64 {
        self.floor
    }

    /// Rows currently held in novelty overlays.
    pub fn novelty_rows(&self) -> usize {
        self.novelty.iter().map(Delta::rows).sum()
    }

    /// Mutation/compaction counters (with the `novelty_size` gauge fresh).
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            novelty_size: self.novelty_rows() as u64,
            ..self.stats
        }
    }

    /// Is the ground fact present at the head version?
    pub fn head_contains(&self, atom: &Atom) -> bool {
        match ground_row(atom) {
            Ok(row) => self
                .head_state
                .get(&atom.pred)
                .is_some_and(|s| s.contains(&row)),
            Err(_) => false,
        }
    }

    /// Appends a new version asserting `facts`. Facts already present are
    /// skipped (the version still advances). Errors on non-ground facts
    /// without changing the store.
    pub fn assert_facts(&mut self, facts: &[Atom]) -> Result<MutationOutcome, StoreError> {
        let rows: Vec<(Row, &Atom)> = facts
            .iter()
            .map(|a| ground_row(a).map(|r| (r, a)))
            .collect::<Result<_, _>>()?;
        let mut delta = Delta::default();
        let mut changed = Vec::new();
        for (row, atom) in rows {
            if self
                .head_state
                .entry(atom.pred)
                .or_default()
                .insert(row.clone())
            {
                delta.asserts.push((atom.pred, row));
                changed.push(atom.clone());
            }
        }
        self.stats.asserts += 1;
        self.stats.facts_asserted += changed.len() as u64;
        self.novelty.push(delta);
        omq_obs::counter("store.assert", 1);
        let version = self.head();
        self.maybe_compact();
        Ok(MutationOutcome { version, changed })
    }

    /// Appends a new version retracting `facts`. Facts absent from the head
    /// are skipped (the version still advances).
    pub fn retract_facts(&mut self, facts: &[Atom]) -> Result<MutationOutcome, StoreError> {
        let rows: Vec<(Row, &Atom)> = facts
            .iter()
            .map(|a| ground_row(a).map(|r| (r, a)))
            .collect::<Result<_, _>>()?;
        let mut delta = Delta::default();
        let mut changed = Vec::new();
        for (row, atom) in rows {
            if self
                .head_state
                .get_mut(&atom.pred)
                .is_some_and(|s| s.remove(&row))
            {
                delta.retracts.push((atom.pred, row));
                changed.push(atom.clone());
            }
        }
        self.stats.retracts += 1;
        self.stats.facts_retracted += changed.len() as u64;
        self.novelty.push(delta);
        omq_obs::counter("store.retract", 1);
        let version = self.head();
        self.maybe_compact();
        Ok(MutationOutcome { version, changed })
    }

    /// Pins the head version against compaction and returns it. Pins stack;
    /// each must be released with [`VersionedStore::release`].
    pub fn snapshot(&mut self) -> u64 {
        let v = self.head();
        *self.pins.entry(v).or_insert(0) += 1;
        self.stats.snapshots += 1;
        v
    }

    /// Releases one pin on `version` (no-op if it was not pinned).
    pub fn release(&mut self, version: u64) {
        if let Some(n) = self.pins.get_mut(&version) {
            *n -= 1;
            if *n == 0 {
                self.pins.remove(&version);
            }
        }
    }

    /// Compacts after a mutation when novelty exceeds the threshold.
    fn maybe_compact(&mut self) -> bool {
        self.cfg.compact_threshold > 0
            && self.novelty_rows() >= self.cfg.compact_threshold
            && self.compact()
    }

    /// Merges novelty into a new frozen base, advancing the floor as far as
    /// pins allow (up to the smallest pinned version, else to the head).
    /// Returns `false` when pins make the merge a no-op.
    pub fn compact(&mut self) -> bool {
        let limit = self
            .pins
            .keys()
            .next()
            .copied()
            .unwrap_or_else(|| self.head())
            .min(self.head());
        if limit <= self.floor {
            return false;
        }
        let merged = (limit - self.floor) as usize;
        for delta in self.novelty.drain(..merged) {
            for (p, row) in delta.asserts {
                insert_sorted(self.base.entry(p).or_default(), row);
            }
            for (p, row) in delta.retracts {
                if let Some(rows) = self.base.get_mut(&p) {
                    remove_sorted(rows, &row);
                }
            }
        }
        self.base.retain(|_, rows| !rows.is_empty());
        self.floor = limit;
        self.stats.compactions += 1;
        omq_obs::counter("store.compact", 1);
        true
    }

    /// Reconstructs the database at `version`: clone the frozen base,
    /// replay the first `version - floor` novelty overlays, and emit atoms
    /// in sorted `(pred, row)` order — byte-deterministic regardless of the
    /// mutation order that produced the version.
    pub fn materialize(&self, version: u64) -> Result<Instance, StoreError> {
        let head = self.head();
        if version > head {
            return Err(StoreError::Future { version, head });
        }
        if version < self.floor {
            return Err(StoreError::Stale {
                version,
                floor: self.floor,
            });
        }
        let mut state = self.base.clone();
        for delta in &self.novelty[..(version - self.floor) as usize] {
            for (p, row) in &delta.asserts {
                insert_sorted(state.entry(*p).or_default(), row.clone());
            }
            for (p, row) in &delta.retracts {
                if let Some(rows) = state.get_mut(p) {
                    remove_sorted(rows, row);
                }
            }
        }
        Ok(Instance::from_atoms(state.into_iter().flat_map(
            |(p, rows)| {
                rows.into_iter()
                    .map(move |row| Atom::new(p, row.iter().map(|&c| Term::from_code(c)).collect()))
            },
        )))
    }
}

/// The head-version chase fixpoint plus the derivation log DRed walks.
#[derive(Clone, Debug)]
struct Fixpoint {
    version: u64,
    instance: Instance,
    complete: bool,
    derivation: Vec<DerivationStep>,
}

/// Answers of one version-addressed evaluation.
#[derive(Clone, Debug)]
pub struct Evaluation {
    pub answers: HashSet<Vec<ConstId>>,
    /// `true` iff the underlying chase reached its fixpoint; `false` means
    /// the budget truncated it and the answers are a sound lower bound.
    pub complete: bool,
    /// The version the evaluation ran against.
    pub version: u64,
}

/// A [`VersionedStore`] whose head chase fixpoint is kept incrementally
/// maintained across assertions (watermark resume) and retractions (DRed).
///
/// The rule set, vocabulary, and chase budget are supplied per call — the
/// serving layer owns those and they may change between requests (budgets
/// are per-request deadlines). The maintained fixpoint is only reused while
/// it matches the store's head version; a budget expiry mid-maintenance
/// leaves it marked incomplete and the next call resumes where it stopped,
/// so an expired deadline can never poison the store.
#[derive(Clone, Debug, Default)]
pub struct MaintainedStore {
    store: VersionedStore,
    fixpoint: Option<Fixpoint>,
    dred_deleted: u64,
    rederived: u64,
    incremental_resumes: u64,
    full_rechases: u64,
    cone_batches: u64,
    cone_reuses: u64,
}

impl MaintainedStore {
    pub fn new(cfg: StoreConfig) -> Self {
        MaintainedStore {
            store: VersionedStore::new(cfg),
            ..MaintainedStore::default()
        }
    }

    pub fn store(&self) -> &VersionedStore {
        &self.store
    }

    pub fn head(&self) -> u64 {
        self.store.head()
    }

    /// Store + maintenance counters, merged.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            dred_deleted: self.dred_deleted,
            rederived: self.rederived,
            incremental_resumes: self.incremental_resumes,
            full_rechases: self.full_rechases,
            cone_batches: self.cone_batches,
            cone_reuses: self.cone_reuses,
            ..self.store.stats()
        }
    }

    /// Pins the head version; see [`VersionedStore::snapshot`].
    pub fn snapshot(&mut self) -> u64 {
        self.store.snapshot()
    }

    /// Releases a snapshot pin.
    pub fn release(&mut self, version: u64) {
        self.store.release(version)
    }

    /// Forces a novelty→base merge now; see [`VersionedStore::compact`].
    /// Compaction only rewrites storage layout — the maintained fixpoint
    /// and every still-reachable version are unaffected.
    pub fn compact(&mut self) -> bool {
        self.store.compact()
    }

    fn recording(cfg: &ChaseConfig) -> ChaseConfig {
        ChaseConfig {
            record_derivation: true,
            ..cfg.clone()
        }
    }

    /// Asserts `facts` as a new version and maintains the fixpoint by
    /// resuming the semi-naive chase from the generation watermark: only
    /// triggers touching the new delta are enumerated, the prior fixpoint
    /// is never re-chased.
    pub fn assert_facts(
        &mut self,
        facts: &[Atom],
        sigma: &[Tgd],
        voc: &mut Vocabulary,
        cfg: &ChaseConfig,
    ) -> Result<u64, StoreError> {
        let out = self.store.assert_facts(facts)?;
        if let Some(fp) = self.fixpoint.take() {
            let mut inst = fp.instance;
            inst.begin_generation();
            let watermark = inst.len();
            for atom in &out.changed {
                inst.insert(atom.clone());
            }
            // A complete prior fixpoint resumes from the watermark; an
            // incomplete one (earlier deadline expiry) restarts trigger
            // enumeration from 0 — head-satisfaction skips everything the
            // truncated run already justified.
            let delta_start = if fp.complete { watermark } else { 0 };
            let _span = omq_obs::span("store.maintain.assert");
            let res = resume_chase(inst, delta_start, sigma, voc, &Self::recording(cfg));
            self.incremental_resumes += 1;
            let mut derivation = fp.derivation;
            derivation.extend(res.derivation);
            self.fixpoint = Some(Fixpoint {
                version: out.version,
                instance: res.instance,
                complete: res.complete,
                derivation,
            });
        }
        Ok(out.version)
    }

    /// Retracts `facts` as a new version and maintains the fixpoint with
    /// DRed: over-delete the support cone by a forward pass over the
    /// derivation log, then re-derive survivors with a delta-0 resume.
    /// A single call is a batch of one; see [`MaintainedStore::retract_batch`]
    /// for amortizing the cone pass across several retract versions.
    pub fn retract_facts(
        &mut self,
        facts: &[Atom],
        sigma: &[Tgd],
        voc: &mut Vocabulary,
        cfg: &ChaseConfig,
    ) -> Result<u64, StoreError> {
        let results = self.retract_batch(&[facts.to_vec()], sigma, voc, cfg);
        results.into_iter().next().expect("one group, one result")
    }

    /// Retracts each group in `groups` as its own store version (one
    /// version per group, in input order), then maintains the fixpoint with
    /// **one** DRed pass over the union of every group's effective
    /// retractions — the support cone is computed once per batch instead of
    /// once per call. Groups whose facts fail validation report their error
    /// in place without blocking the rest of the batch.
    ///
    /// Joint maintenance is equivalent to sequential per-call maintenance
    /// for certain answers (both end in a universal model of the final
    /// head database), and strictly cheaper: intermediate cones and
    /// re-derivations of facts a later group deletes again are skipped.
    pub fn retract_batch(
        &mut self,
        groups: &[Vec<Atom>],
        sigma: &[Tgd],
        voc: &mut Vocabulary,
        cfg: &ChaseConfig,
    ) -> Vec<Result<u64, StoreError>> {
        let mut results = Vec::with_capacity(groups.len());
        let mut all_changed: Vec<Atom> = Vec::new();
        let mut versions = 0u64;
        for facts in groups {
            match self.store.retract_facts(facts) {
                Ok(out) => {
                    all_changed.extend(out.changed);
                    versions += 1;
                    results.push(Ok(out.version));
                }
                Err(e) => results.push(Err(e)),
            }
        }
        if versions > 0 && self.fixpoint.is_some() {
            self.dred_maintain(&all_changed, sigma, voc, cfg);
            self.cone_batches += 1;
            self.cone_reuses += versions - 1;
            omq_obs::counter("store.cone_batch", 1);
            omq_obs::counter("store.cone_reuse", versions - 1);
        }
        results
    }

    /// One DRed maintenance pass: over-delete the support cone of `changed`
    /// by a forward pass over the derivation log, then re-derive survivors
    /// with a delta-0 resume. The rebuilt fixpoint is stamped with the
    /// store's *current* head, so a batch of retract versions lands on the
    /// final one.
    fn dred_maintain(
        &mut self,
        changed: &[Atom],
        sigma: &[Tgd],
        voc: &mut Vocabulary,
        cfg: &ChaseConfig,
    ) {
        let Some(fp) = self.fixpoint.take() else {
            return;
        };
        let _span = omq_obs::span("store.maintain.dred");
        // Over-delete: anything downstream of a deleted atom dies with
        // it. A step is dead when any input *or* output is deleted; a
        // dead step's outputs join the cone (multi-head tgds over-delete
        // sibling outputs too — the re-derivation pass reinstates them).
        let mut deleted: HashSet<Atom> = changed.iter().cloned().collect();
        let mut kept_steps = Vec::with_capacity(fp.derivation.len());
        for step in fp.derivation {
            let dead = step.inputs.iter().any(|a| deleted.contains(a))
                || step.outputs.iter().any(|a| deleted.contains(a));
            if dead {
                deleted.extend(step.outputs.iter().cloned());
            } else {
                kept_steps.push(step);
            }
        }
        // Survivors keep their insertion order; an over-deleted atom
        // survives if it is still an EDB fact at the new head (it was
        // independently asserted).
        let mut survivor = Instance::default();
        for atom in fp.instance.atoms() {
            if !deleted.contains(atom) || self.store.head_contains(atom) {
                survivor.insert(atom.clone());
            }
        }
        self.dred_deleted += (fp.instance.len() - survivor.len()) as u64;
        let res = resume_chase(survivor, 0, sigma, voc, &Self::recording(cfg));
        self.rederived += res.steps as u64;
        let mut derivation = kept_steps;
        derivation.extend(res.derivation);
        self.fixpoint = Some(Fixpoint {
            version: self.store.head(),
            instance: res.instance,
            complete: res.complete,
            derivation,
        });
    }

    /// Ensures the head fixpoint exists and is as complete as `cfg`'s
    /// budget allows, resuming an earlier truncated maintenance run rather
    /// than restarting it.
    fn ensure_head(
        &mut self,
        sigma: &[Tgd],
        voc: &mut Vocabulary,
        cfg: &ChaseConfig,
    ) -> Result<(), StoreError> {
        let head = self.store.head();
        match self.fixpoint.take() {
            Some(fp) if fp.version == head && fp.complete => {
                self.fixpoint = Some(fp);
            }
            Some(fp) if fp.version == head => {
                let _span = omq_obs::span("store.maintain.rechase");
                let res = resume_chase(fp.instance, 0, sigma, voc, &Self::recording(cfg));
                self.incremental_resumes += 1;
                let mut derivation = fp.derivation;
                derivation.extend(res.derivation);
                self.fixpoint = Some(Fixpoint {
                    version: head,
                    instance: res.instance,
                    complete: res.complete,
                    derivation,
                });
            }
            _ => {
                let _span = omq_obs::span("store.maintain.rechase");
                let db = self.store.materialize(head)?;
                let res = chase(&db, sigma, voc, &Self::recording(cfg));
                self.full_rechases += 1;
                self.fixpoint = Some(Fixpoint {
                    version: head,
                    instance: res.instance,
                    complete: res.complete,
                    derivation: res.derivation,
                });
            }
        }
        Ok(())
    }

    /// Certain answers of `query` over the chase of version `at` (default:
    /// head). The head uses the maintained fixpoint; pinned or pre-head
    /// versions materialize and chase from scratch (they are off the
    /// maintenance path by construction).
    pub fn evaluate(
        &mut self,
        at: Option<u64>,
        query: &Ucq,
        sigma: &[Tgd],
        voc: &mut Vocabulary,
        cfg: &ChaseConfig,
    ) -> Result<Evaluation, StoreError> {
        let head = self.store.head();
        let version = at.unwrap_or(head);
        if version == head {
            self.ensure_head(sigma, voc, cfg)?;
            let fp = self.fixpoint.as_ref().expect("ensure_head installed it");
            Ok(Evaluation {
                answers: eval_ucq(query, &fp.instance),
                complete: fp.complete,
                version,
            })
        } else {
            let db = self.store.materialize(version)?;
            let res = chase(&db, sigma, voc, cfg);
            Ok(Evaluation {
                answers: eval_ucq(query, &res.instance),
                complete: res.complete,
                version,
            })
        }
    }

    /// Is the maintained head fixpoint present and complete?
    pub fn head_complete(&self) -> bool {
        self.fixpoint
            .as_ref()
            .is_some_and(|fp| fp.version == self.store.head() && fp.complete)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_model::parse_program;

    fn edge(voc: &Vocabulary, p: &str, a: &str, b: &str) -> Atom {
        Atom::new(
            voc.pred_id(p).unwrap(),
            vec![
                Term::Const(voc.const_id(a).unwrap()),
                Term::Const(voc.const_id(b).unwrap()),
            ],
        )
    }

    /// Transitive closure: E ⊆ T, E;T ⊆ T over a seed chain, with the query
    /// and constants pre-interned so `voc` lookups never miss.
    fn tc_setup() -> (Vec<Tgd>, Ucq, Vocabulary) {
        let prog = parse_program(
            "E(X,Y) -> T(X,Y)\nE(X,Y), T(Y,Z) -> T(X,Z)\n\
             q(X,Y) :- T(X,Y)\n\
             seed :- E(a,b), E(b,c), E(c,d), E(d,e), E(e,f)\n",
        )
        .unwrap();
        let q = prog.query("q").unwrap().clone();
        (prog.tgds.clone(), q, prog.voc)
    }

    fn chain(voc: &Vocabulary, names: &[&str]) -> Vec<Atom> {
        names
            .windows(2)
            .map(|w| edge(voc, "E", w[0], w[1]))
            .collect()
    }

    fn sorted_answers(ans: &HashSet<Vec<ConstId>>) -> Vec<Vec<ConstId>> {
        let mut v: Vec<_> = ans.iter().cloned().collect();
        v.sort();
        v
    }

    #[test]
    fn versions_are_dense_and_materialize_deterministically() {
        let (_, _, voc) = tc_setup();
        let mut store = VersionedStore::new(StoreConfig {
            compact_threshold: 0,
        });
        assert_eq!(store.head(), 0);
        let v1 = store
            .assert_facts(&chain(&voc, &["a", "b", "c"]))
            .unwrap()
            .version;
        let v2 = store
            .assert_facts(&[edge(&voc, "E", "c", "d")])
            .unwrap()
            .version;
        assert_eq!((v1, v2), (1, 2));
        let at1 = store.materialize(1).unwrap();
        assert_eq!(at1.len(), 2);
        let at2 = store.materialize(2).unwrap();
        assert_eq!(at2.len(), 3);
        assert_eq!(store.materialize(0).unwrap().len(), 0);
        assert_eq!(
            store.materialize(7),
            Err(StoreError::Future {
                version: 7,
                head: 2
            })
        );
    }

    #[test]
    fn reasserting_a_present_fact_is_an_empty_delta() {
        let (_, _, voc) = tc_setup();
        let mut store = VersionedStore::new(StoreConfig::default());
        store.assert_facts(&[edge(&voc, "E", "a", "b")]).unwrap();
        let out = store.assert_facts(&[edge(&voc, "E", "a", "b")]).unwrap();
        assert_eq!(out.version, 2, "the version still advances");
        assert!(out.changed.is_empty(), "but nothing changed");
        assert_eq!(store.materialize(2).unwrap().len(), 1);
    }

    #[test]
    fn compaction_preserves_content_and_stales_unpinned_versions() {
        let (_, _, voc) = tc_setup();
        let mut store = VersionedStore::new(StoreConfig {
            compact_threshold: 0,
        });
        store
            .assert_facts(&chain(&voc, &["a", "b", "c", "d"]))
            .unwrap();
        store.retract_facts(&[edge(&voc, "E", "b", "c")]).unwrap();
        let before = store.materialize(store.head()).unwrap();
        let sketch = before.card_sketch();
        assert!(store.compact());
        assert_eq!(store.floor(), 2);
        assert_eq!(store.novelty_rows(), 0);
        let after = store.materialize(store.head()).unwrap();
        assert_eq!(before, after, "compaction rewrites layout, not content");
        assert_eq!(sketch, after.card_sketch());
        assert_eq!(
            store.materialize(1),
            Err(StoreError::Stale {
                version: 1,
                floor: 2
            })
        );
    }

    #[test]
    fn snapshots_pin_versions_against_compaction() {
        let (_, _, voc) = tc_setup();
        let mut store = VersionedStore::new(StoreConfig {
            compact_threshold: 0,
        });
        store.assert_facts(&[edge(&voc, "E", "a", "b")]).unwrap();
        let pinned = store.snapshot();
        store.assert_facts(&[edge(&voc, "E", "b", "c")]).unwrap();
        store.assert_facts(&[edge(&voc, "E", "c", "d")]).unwrap();
        assert!(store.compact());
        assert_eq!(store.floor(), pinned, "floor stops at the pin");
        assert_eq!(store.materialize(pinned).unwrap().len(), 1);
        store.release(pinned);
        assert!(store.compact());
        assert_eq!(store.floor(), store.head());
        assert_eq!(
            store.materialize(pinned),
            Err(StoreError::Stale {
                version: pinned,
                floor: 3
            })
        );
    }

    #[test]
    fn threshold_triggers_automatic_compaction() {
        let (_, _, voc) = tc_setup();
        let mut store = VersionedStore::new(StoreConfig {
            compact_threshold: 3,
        });
        store.assert_facts(&[edge(&voc, "E", "a", "b")]).unwrap();
        store.assert_facts(&[edge(&voc, "E", "b", "c")]).unwrap();
        assert_eq!(store.stats().compactions, 0);
        store.assert_facts(&[edge(&voc, "E", "c", "d")]).unwrap();
        let stats = store.stats();
        assert_eq!(stats.compactions, 1);
        assert_eq!(stats.novelty_size, 0);
        assert_eq!(store.floor(), 3);
    }

    #[test]
    fn non_ground_facts_are_rejected_without_a_version_bump() {
        let (_, _, voc) = tc_setup();
        let mut store = VersionedStore::new(StoreConfig::default());
        let bad = Atom::new(
            voc.pred_id("E").unwrap(),
            vec![
                Term::Var(omq_model::VarId(0)),
                Term::Const(voc.const_id("a").unwrap()),
            ],
        );
        assert!(matches!(
            store.assert_facts(&[bad]),
            Err(StoreError::NotGround { .. })
        ));
        assert_eq!(store.head(), 0);
    }

    #[test]
    fn incremental_assert_matches_from_scratch_answers() {
        let (sigma, q, voc) = tc_setup();
        let mut voc = voc;
        let cfg = ChaseConfig::default();
        let mut ms = MaintainedStore::new(StoreConfig::default());
        ms.assert_facts(
            &chain(&voc.clone(), &["a", "b", "c", "d"]),
            &sigma,
            &mut voc,
            &cfg,
        )
        .unwrap();
        let base = ms.evaluate(None, &q, &sigma, &mut voc, &cfg).unwrap();
        assert!(base.complete);
        // One more edge: the fixpoint resumes from the watermark.
        let e = edge(&voc, "E", "d", "e");
        ms.assert_facts(&[e], &sigma, &mut voc, &cfg).unwrap();
        let inc = ms.evaluate(None, &q, &sigma, &mut voc, &cfg).unwrap();
        let scratch = {
            let db = ms.store().materialize(ms.head()).unwrap();
            let out = chase(&db, &sigma, &mut voc.clone(), &cfg);
            assert!(out.complete);
            eval_ucq(&q, &out.instance)
        };
        assert_eq!(sorted_answers(&inc.answers), sorted_answers(&scratch));
        let stats = ms.stats();
        assert!(stats.incremental_resumes >= 1);
        assert_eq!(stats.full_rechases, 1, "only the initial evaluate chased");
    }

    #[test]
    fn dred_retract_matches_from_scratch_answers() {
        let (sigma, q, voc) = tc_setup();
        let mut voc = voc;
        let cfg = ChaseConfig::default();
        let mut ms = MaintainedStore::new(StoreConfig::default());
        ms.assert_facts(
            &chain(&voc.clone(), &["a", "b", "c", "d", "e"]),
            &sigma,
            &mut voc,
            &cfg,
        )
        .unwrap();
        ms.evaluate(None, &q, &sigma, &mut voc, &cfg).unwrap();
        // Cutting b→c severs every a/b → c/d/e path.
        ms.retract_facts(&[edge(&voc, "E", "b", "c")], &sigma, &mut voc, &cfg)
            .unwrap();
        let inc = ms.evaluate(None, &q, &sigma, &mut voc, &cfg).unwrap();
        let scratch = {
            let db = ms.store().materialize(ms.head()).unwrap();
            let out = chase(&db, &sigma, &mut voc.clone(), &cfg);
            eval_ucq(&q, &out.instance)
        };
        assert_eq!(sorted_answers(&inc.answers), sorted_answers(&scratch));
        let stats = ms.stats();
        assert!(stats.dred_deleted > 0, "the cone was over-deleted");
        assert_eq!(stats.full_rechases, 1, "retract maintained incrementally");
    }

    #[test]
    fn dred_rederives_atoms_with_alternative_derivations() {
        let (sigma, q, voc) = tc_setup();
        let mut voc = voc;
        let cfg = ChaseConfig::default();
        let mut ms = MaintainedStore::new(StoreConfig::default());
        // Two parallel edges a→b (E and a direct T assertion is not possible
        // here; instead duplicate the path): a→b plus a→c→b keeps T(a,b)
        // derivable after the direct edge is cut.
        let facts = vec![
            edge(&voc, "E", "a", "b"),
            edge(&voc, "E", "a", "c"),
            edge(&voc, "E", "c", "b"),
        ];
        ms.assert_facts(&facts, &sigma, &mut voc, &cfg).unwrap();
        ms.evaluate(None, &q, &sigma, &mut voc, &cfg).unwrap();
        ms.retract_facts(&[edge(&voc, "E", "a", "b")], &sigma, &mut voc, &cfg)
            .unwrap();
        let ans = ms.evaluate(None, &q, &sigma, &mut voc, &cfg).unwrap();
        let a = voc.const_id("a").unwrap();
        let b = voc.const_id("b").unwrap();
        assert!(
            ans.answers.contains(&vec![a, b]),
            "T(a,b) re-derived through a→c→b"
        );
        assert!(ms.stats().rederived > 0);
    }

    #[test]
    fn batched_retracts_share_one_cone_pass_and_match_from_scratch() {
        let (sigma, q, voc) = tc_setup();
        let cfg = ChaseConfig::default();
        let seed = |voc: &Vocabulary| chain(voc, &["a", "b", "c", "d", "e", "f"]);
        let cuts = [("b", "c"), ("d", "e")];
        // Batched: both retract versions share one DRed pass.
        let mut voc_b = voc.clone();
        let mut batched = MaintainedStore::new(StoreConfig::default());
        batched
            .assert_facts(&seed(&voc_b), &sigma, &mut voc_b, &cfg)
            .unwrap();
        batched
            .evaluate(None, &q, &sigma, &mut voc_b, &cfg)
            .unwrap();
        let groups: Vec<Vec<Atom>> = cuts
            .iter()
            .map(|(x, y)| vec![edge(&voc_b, "E", x, y)])
            .collect();
        let versions = batched.retract_batch(&groups, &sigma, &mut voc_b, &cfg);
        assert_eq!(versions.len(), 2);
        assert_eq!(*versions[0].as_ref().unwrap(), 2);
        assert_eq!(*versions[1].as_ref().unwrap(), 3);
        let b_ans = batched
            .evaluate(None, &q, &sigma, &mut voc_b, &cfg)
            .unwrap();
        let stats = batched.stats();
        assert_eq!(stats.cone_batches, 1, "one pass for two retract versions");
        assert_eq!(stats.cone_reuses, 1);
        assert_eq!(stats.retracts, 2, "each group is its own store version");
        // Sequential per-call retracts and a from-scratch chase agree.
        let mut voc_s = voc.clone();
        let mut seq = MaintainedStore::new(StoreConfig::default());
        seq.assert_facts(&seed(&voc_s), &sigma, &mut voc_s, &cfg)
            .unwrap();
        seq.evaluate(None, &q, &sigma, &mut voc_s, &cfg).unwrap();
        for (x, y) in cuts {
            seq.retract_facts(&[edge(&voc_s, "E", x, y)], &sigma, &mut voc_s, &cfg)
                .unwrap();
        }
        let s_ans = seq.evaluate(None, &q, &sigma, &mut voc_s, &cfg).unwrap();
        assert_eq!(
            sorted_answers(&b_ans.answers),
            sorted_answers(&s_ans.answers)
        );
        assert_eq!(seq.stats().cone_batches, 2, "per-call = batch of one");
        assert_eq!(seq.stats().cone_reuses, 0);
        let scratch = {
            let db = batched.store().materialize(batched.head()).unwrap();
            eval_ucq(&q, &chase(&db, &sigma, &mut voc_b.clone(), &cfg).instance)
        };
        assert_eq!(sorted_answers(&b_ans.answers), sorted_answers(&scratch));
    }

    #[test]
    fn batch_with_a_bad_group_reports_in_place_and_maintains_the_rest() {
        let (sigma, q, voc) = tc_setup();
        let mut voc = voc;
        let cfg = ChaseConfig::default();
        let mut ms = MaintainedStore::new(StoreConfig::default());
        ms.assert_facts(
            &chain(&voc.clone(), &["a", "b", "c", "d"]),
            &sigma,
            &mut voc,
            &cfg,
        )
        .unwrap();
        ms.evaluate(None, &q, &sigma, &mut voc, &cfg).unwrap();
        let bad = Atom::new(
            voc.pred_id("E").unwrap(),
            vec![
                Term::Var(omq_model::VarId(0)),
                Term::Const(voc.const_id("a").unwrap()),
            ],
        );
        let groups = vec![
            vec![edge(&voc, "E", "b", "c")],
            vec![bad],
            vec![edge(&voc, "E", "c", "d")],
        ];
        let results = ms.retract_batch(&groups, &sigma, &mut voc, &cfg);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(StoreError::NotGround { .. })));
        assert!(results[2].is_ok());
        let ans = ms.evaluate(None, &q, &sigma, &mut voc, &cfg).unwrap();
        let scratch = {
            let db = ms.store().materialize(ms.head()).unwrap();
            eval_ucq(&q, &chase(&db, &sigma, &mut voc.clone(), &cfg).instance)
        };
        assert_eq!(sorted_answers(&ans.answers), sorted_answers(&scratch));
        assert_eq!(ms.stats().cone_batches, 1);
        assert_eq!(ms.stats().cone_reuses, 1, "two good groups, one pass");
    }

    #[test]
    fn evaluate_at_a_pinned_version_is_stable_across_later_mutations() {
        let (sigma, q, voc) = tc_setup();
        let mut voc = voc;
        let cfg = ChaseConfig::default();
        let mut ms = MaintainedStore::new(StoreConfig {
            compact_threshold: 1,
        });
        ms.assert_facts(
            &chain(&voc.clone(), &["a", "b", "c"]),
            &sigma,
            &mut voc,
            &cfg,
        )
        .unwrap();
        let pinned = ms.snapshot();
        let before = ms
            .evaluate(Some(pinned), &q, &sigma, &mut voc, &cfg)
            .unwrap();
        for pair in [("c", "d"), ("d", "e"), ("e", "f")] {
            ms.assert_facts(&[edge(&voc, "E", pair.0, pair.1)], &sigma, &mut voc, &cfg)
                .unwrap();
        }
        assert!(ms.stats().compactions > 0, "threshold=1 compacts eagerly");
        let after = ms
            .evaluate(Some(pinned), &q, &sigma, &mut voc, &cfg)
            .unwrap();
        assert_eq!(
            sorted_answers(&before.answers),
            sorted_answers(&after.answers),
            "the pinned version's answers never move"
        );
        // An unpinned early version is gone.
        assert!(matches!(
            ms.evaluate(Some(0), &q, &sigma, &mut voc, &cfg),
            Err(StoreError::Stale { .. })
        ));
    }

    #[test]
    fn expired_budget_degrades_without_poisoning_the_store() {
        let (sigma, q, voc) = tc_setup();
        let mut voc = voc;
        let cfg = ChaseConfig::default();
        let mut ms = MaintainedStore::new(StoreConfig::default());
        ms.assert_facts(
            &chain(&voc.clone(), &["a", "b", "c", "d"]),
            &sigma,
            &mut voc,
            &cfg,
        )
        .unwrap();
        // Maintenance under an already-expired budget truncates the chase.
        let dead = ChaseConfig {
            budget: omq_chase::Budget::deadline_in(std::time::Duration::ZERO),
            ..ChaseConfig::default()
        };
        ms.assert_facts(&[edge(&voc, "E", "d", "e")], &sigma, &mut voc, &dead)
            .unwrap();
        let degraded = ms.evaluate(None, &q, &sigma, &mut voc, &dead).unwrap();
        assert!(!degraded.complete, "truncated fixpoint reports lower bound");
        // A later call with a live budget resumes and completes.
        let healed = ms.evaluate(None, &q, &sigma, &mut voc, &cfg).unwrap();
        assert!(healed.complete, "maintenance resumed, store not poisoned");
        let scratch = {
            let db = ms.store().materialize(ms.head()).unwrap();
            eval_ucq(&q, &chase(&db, &sigma, &mut voc.clone(), &cfg).instance)
        };
        assert_eq!(sorted_answers(&healed.answers), sorted_answers(&scratch));
        assert!(
            degraded.answers.is_subset(&healed.answers),
            "sound lower bound"
        );
    }
}
