//! Hash-consed storage for positive Boolean formulas `B⁺(X)`.
//!
//! [`Bf`] is the right *construction* surface — callers assemble transition
//! conditions with `and`/`or`/`all`/`any` — but as a tree it is the wrong
//! *evaluation* surface: the 2WAPA membership fixpoint re-walks every
//! formula per node per round, the subset translation re-expands the same
//! `(state, label)` condition for every state set, and `minimal_models`
//! recomputes identical subproblems. [`BfPool`] interns formulas into a
//! node table with structural sharing: each distinct subformula exists once
//! and is identified by a dense [`BfId`], connectives are flattened, their
//! children sorted and deduplicated (idempotence), constants folded, and a
//! light absorption rule (`x ∧ (x ∨ y) = x`, dually for ∨) applied — so
//! `and`/`or` are memoized and evaluation is `O(shared nodes)` through
//! [`EvalCache`] instead of `O(tree size)`.
//!
//! The pool is an arena: ids are only meaningful against the pool that
//! issued them, and nothing is ever freed — the automata constructions
//! build a pool per call and drop it wholesale.

use std::collections::HashMap;
use std::hash::Hash;
use std::rc::Rc;

use crate::bformula::Bf;

/// Identifier of an interned formula node within one [`BfPool`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct BfId(u32);

impl BfId {
    /// The constant-false node (id 0 in every pool).
    pub const FALSE: BfId = BfId(0);
    /// The constant-true node (id 1 in every pool).
    pub const TRUE: BfId = BfId(1);

    fn index(self) -> usize {
        self.0 as usize
    }
}

/// Interned node. Connective children are sorted, deduplicated, have length
/// ≥ 2, and never repeat the connective of their parent (flattening), so
/// structural equality of nodes coincides with the canonical form.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum Node {
    False,
    True,
    Lit(u32),
    And(Box<[BfId]>),
    Or(Box<[BfId]>),
}

/// A hash-consing pool for `B⁺(X)` formulas with atoms of type `A`.
pub struct BfPool<A> {
    nodes: Vec<Node>,
    intern: HashMap<Node, BfId>,
    lits: Vec<A>,
    lit_ids: HashMap<A, u32>,
    memo_and: HashMap<(BfId, BfId), BfId>,
    memo_or: HashMap<(BfId, BfId), BfId>,
    memo_models: HashMap<BfId, Rc<Vec<Vec<u32>>>>,
}

impl<A: Clone + Eq + Hash> Default for BfPool<A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: Clone + Eq + Hash> BfPool<A> {
    pub fn new() -> Self {
        let mut pool = BfPool {
            nodes: Vec::new(),
            intern: HashMap::new(),
            lits: Vec::new(),
            lit_ids: HashMap::new(),
            memo_and: HashMap::new(),
            memo_or: HashMap::new(),
            memo_models: HashMap::new(),
        };
        // Pin the constants to ids 0 and 1 (`BfId::FALSE` / `BfId::TRUE`).
        pool.insert(Node::False);
        pool.insert(Node::True);
        pool
    }

    /// Number of distinct interned nodes (including the two constants).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn insert(&mut self, node: Node) -> BfId {
        if let Some(&id) = self.intern.get(&node) {
            return id;
        }
        let id = BfId(self.nodes.len() as u32);
        self.nodes.push(node.clone());
        self.intern.insert(node, id);
        omq_obs::counter("bf_nodes_interned", 1);
        id
    }

    /// Interns an atom.
    pub fn lit(&mut self, a: A) -> BfId {
        let next = self.lits.len() as u32;
        let li = match self.lit_ids.get(&a) {
            Some(&li) => li,
            None => {
                self.lit_ids.insert(a.clone(), next);
                self.lits.push(a);
                next
            }
        };
        self.insert(Node::Lit(li))
    }

    /// The atom behind a literal index (as produced by
    /// [`BfPool::minimal_models`]).
    pub fn lit_value(&self, li: u32) -> &A {
        &self.lits[li as usize]
    }

    /// Does `id` denote an `Or` node whose children include `child`?
    fn or_contains(&self, id: BfId, child: BfId) -> bool {
        matches!(&self.nodes[id.index()], Node::Or(cs) if cs.binary_search(&child).is_ok())
    }

    /// Does `id` denote an `And` node whose children include `child`?
    fn and_contains(&self, id: BfId, child: BfId) -> bool {
        matches!(&self.nodes[id.index()], Node::And(cs) if cs.binary_search(&child).is_ok())
    }

    /// Flattens `id` into `out` if it is an `And` node, else pushes `id`.
    fn flatten_and(&self, id: BfId, out: &mut Vec<BfId>) {
        match &self.nodes[id.index()] {
            Node::And(cs) => out.extend_from_slice(cs),
            _ => out.push(id),
        }
    }

    fn flatten_or(&self, id: BfId, out: &mut Vec<BfId>) {
        match &self.nodes[id.index()] {
            Node::Or(cs) => out.extend_from_slice(cs),
            _ => out.push(id),
        }
    }

    /// Memoized conjunction with constant folding, flattening, idempotence,
    /// and absorption (`x ∧ (x ∨ y) = x`).
    pub fn and(&mut self, x: BfId, y: BfId) -> BfId {
        if x == BfId::FALSE || y == BfId::FALSE {
            return BfId::FALSE;
        }
        if x == BfId::TRUE {
            return y;
        }
        if y == BfId::TRUE || x == y {
            return x;
        }
        let key = (x.min(y), x.max(y));
        if let Some(&id) = self.memo_and.get(&key) {
            return id;
        }
        // Binary absorption before building the n-ary node.
        let id = if self.or_contains(x, y) {
            y
        } else if self.or_contains(y, x) {
            x
        } else {
            let mut kids = Vec::new();
            self.flatten_and(x, &mut kids);
            self.flatten_and(y, &mut kids);
            kids.sort_unstable();
            kids.dedup();
            // n-ary absorption: drop any ∨-child another child subsumes.
            let keep: Vec<BfId> = kids
                .iter()
                .copied()
                .filter(|&c| !kids.iter().any(|&d| d != c && self.or_contains(c, d)))
                .collect();
            match keep.len() {
                0 => BfId::TRUE,
                1 => keep[0],
                _ => self.insert(Node::And(keep.into_boxed_slice())),
            }
        };
        self.memo_and.insert(key, id);
        id
    }

    /// Memoized disjunction, dual to [`BfPool::and`].
    pub fn or(&mut self, x: BfId, y: BfId) -> BfId {
        if x == BfId::TRUE || y == BfId::TRUE {
            return BfId::TRUE;
        }
        if x == BfId::FALSE {
            return y;
        }
        if y == BfId::FALSE || x == y {
            return x;
        }
        let key = (x.min(y), x.max(y));
        if let Some(&id) = self.memo_or.get(&key) {
            return id;
        }
        let id = if self.and_contains(x, y) {
            y
        } else if self.and_contains(y, x) {
            x
        } else {
            let mut kids = Vec::new();
            self.flatten_or(x, &mut kids);
            self.flatten_or(y, &mut kids);
            kids.sort_unstable();
            kids.dedup();
            let keep: Vec<BfId> = kids
                .iter()
                .copied()
                .filter(|&c| !kids.iter().any(|&d| d != c && self.and_contains(c, d)))
                .collect();
            match keep.len() {
                0 => BfId::FALSE,
                1 => keep[0],
                _ => self.insert(Node::Or(keep.into_boxed_slice())),
            }
        };
        self.memo_or.insert(key, id);
        id
    }

    /// Conjunction of many formulas.
    pub fn all(&mut self, items: impl IntoIterator<Item = BfId>) -> BfId {
        items
            .into_iter()
            .fold(BfId::TRUE, |acc, x| self.and(acc, x))
    }

    /// Disjunction of many formulas.
    pub fn any(&mut self, items: impl IntoIterator<Item = BfId>) -> BfId {
        items
            .into_iter()
            .fold(BfId::FALSE, |acc, x| self.or(acc, x))
    }

    /// Interns a tree-form formula.
    pub fn intern_bf(&mut self, f: &Bf<A>) -> BfId {
        match f {
            Bf::True => BfId::TRUE,
            Bf::False => BfId::FALSE,
            Bf::Lit(a) => self.lit(a.clone()),
            Bf::And(xs) => {
                let mut acc = BfId::TRUE;
                for x in xs {
                    let xi = self.intern_bf(x);
                    acc = self.and(acc, xi);
                }
                acc
            }
            Bf::Or(xs) => {
                let mut acc = BfId::FALSE;
                for x in xs {
                    let xi = self.intern_bf(x);
                    acc = self.or(acc, xi);
                }
                acc
            }
        }
    }

    /// Reconstructs the tree form (tests / debugging).
    pub fn to_bf(&self, id: BfId) -> Bf<A> {
        match &self.nodes[id.index()] {
            Node::False => Bf::False,
            Node::True => Bf::True,
            Node::Lit(li) => Bf::Lit(self.lits[*li as usize].clone()),
            Node::And(cs) => Bf::And(cs.iter().map(|&c| self.to_bf(c)).collect()),
            Node::Or(cs) => Bf::Or(cs.iter().map(|&c| self.to_bf(c)).collect()),
        }
    }

    /// The ⊆-minimal models of `id` as sorted lists of literal indices
    /// (resolve with [`BfPool::lit_value`]). Memoized per node, so shared
    /// subformulas are enumerated once across the whole pool lifetime.
    pub fn minimal_models(&mut self, id: BfId) -> Rc<Vec<Vec<u32>>> {
        if let Some(m) = self.memo_models.get(&id) {
            return m.clone();
        }
        let models = match self.nodes[id.index()].clone() {
            Node::False => Vec::new(),
            Node::True => vec![Vec::new()],
            Node::Lit(li) => vec![vec![li]],
            Node::Or(cs) => {
                let mut out = Vec::new();
                for c in cs.iter() {
                    out.extend(self.minimal_models(*c).iter().cloned());
                }
                prune_supersets(out)
            }
            Node::And(cs) => {
                let mut out: Vec<Vec<u32>> = vec![Vec::new()];
                for c in cs.iter() {
                    let ms = self.minimal_models(*c);
                    let mut next = Vec::with_capacity(out.len() * ms.len());
                    for base in &out {
                        for m in ms.iter() {
                            let mut u = base.clone();
                            u.extend(m.iter().copied());
                            u.sort_unstable();
                            u.dedup();
                            next.push(u);
                        }
                    }
                    out = prune_supersets(next);
                }
                out
            }
        };
        let rc = Rc::new(models);
        self.memo_models.insert(id, rc.clone());
        rc
    }
}

/// Keeps only ⊆-minimal sets (each set sorted).
fn prune_supersets(mut ms: Vec<Vec<u32>>) -> Vec<Vec<u32>> {
    ms.sort();
    ms.dedup();
    ms.sort_by_key(Vec::len);
    let mut out: Vec<Vec<u32>> = Vec::new();
    'outer: for m in ms {
        for kept in &out {
            if kept.iter().all(|a| m.binary_search(a).is_ok()) {
                continue 'outer;
            }
        }
        out.push(m);
    }
    out
}

/// Epoch-stamped evaluation cache: each call to [`EvalCache::eval`] opens a
/// fresh valuation epoch, and every pool node is evaluated at most once per
/// epoch regardless of how often it is shared.
#[derive(Default)]
pub struct EvalCache {
    epoch: u32,
    stamp: Vec<u32>,
    value: Vec<bool>,
}

impl EvalCache {
    pub fn new() -> Self {
        EvalCache::default()
    }

    /// Evaluates `id` under the valuation `val`, memoizing shared nodes.
    pub fn eval<A: Clone + Eq + Hash>(
        &mut self,
        pool: &BfPool<A>,
        id: BfId,
        val: &mut impl FnMut(&A) -> bool,
    ) -> bool {
        if self.stamp.len() < pool.nodes.len() {
            self.stamp.resize(pool.nodes.len(), 0);
            self.value.resize(pool.nodes.len(), false);
        }
        // Epoch 0 marks "never evaluated"; wrap by clearing stamps.
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.stamp.fill(0);
                1
            }
        };
        self.eval_node(pool, id, val)
    }

    fn eval_node<A: Clone + Eq + Hash>(
        &mut self,
        pool: &BfPool<A>,
        id: BfId,
        val: &mut impl FnMut(&A) -> bool,
    ) -> bool {
        let i = id.index();
        if self.stamp[i] == self.epoch {
            return self.value[i];
        }
        let v = match &pool.nodes[i] {
            Node::False => false,
            Node::True => true,
            Node::Lit(li) => val(&pool.lits[*li as usize]),
            Node::And(cs) => cs.iter().all(|&c| self.eval_node(pool, c, val)),
            Node::Or(cs) => cs.iter().any(|&c| self.eval_node(pool, c, val)),
        };
        self.stamp[i] = self.epoch;
        self.value[i] = v;
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_and_simplification() {
        let mut p: BfPool<u32> = BfPool::new();
        let a = p.lit(1);
        let b = p.lit(2);
        assert_eq!(p.and(BfId::TRUE, a), a);
        assert_eq!(p.and(BfId::FALSE, a), BfId::FALSE);
        assert_eq!(p.or(BfId::FALSE, b), b);
        assert_eq!(p.or(BfId::TRUE, b), BfId::TRUE);
        assert_eq!(p.and(a, a), a, "idempotence");
        let ab = p.or(a, b);
        assert_eq!(p.and(a, ab), a, "absorption x ∧ (x ∨ y) = x");
        let aab = p.and(a, b);
        assert_eq!(p.or(a, aab), a, "absorption x ∨ (x ∧ y) = x");
    }

    #[test]
    fn structural_sharing_is_real() {
        let mut p: BfPool<u32> = BfPool::new();
        let a = p.lit(1);
        let b = p.lit(2);
        let f1 = p.and(a, b);
        let before = p.num_nodes();
        let b2 = p.lit(2);
        let f2 = p.and(b2, a);
        assert_eq!(f1, f2, "commutative variants intern to one node");
        assert_eq!(p.num_nodes(), before, "no new nodes for a re-build");
    }

    #[test]
    fn intern_round_trips_evaluation() {
        let f = Bf::Lit(1u32).and(Bf::Lit(2).or(Bf::Lit(3)));
        let mut p: BfPool<u32> = BfPool::new();
        let id = p.intern_bf(&f);
        let mut cache = EvalCache::new();
        for mask in 0u32..8 {
            let mut val = |a: &u32| mask & (1 << (a - 1)) != 0;
            assert_eq!(
                cache.eval(&p, id, &mut val),
                f.eval(&mut |a| mask & (1 << (a - 1)) != 0),
                "valuation {mask:03b}"
            );
        }
    }

    #[test]
    fn minimal_models_match_tree_form() {
        let f = (Bf::Lit(1u32).and(Bf::Lit(2)))
            .or(Bf::Lit(3))
            .or(Bf::Lit(1).and(Bf::Lit(2)).and(Bf::Lit(4)));
        let mut p: BfPool<u32> = BfPool::new();
        let id = p.intern_bf(&f);
        let got: Vec<Vec<u32>> = p
            .minimal_models(id)
            .iter()
            .map(|m| m.iter().map(|&li| *p.lit_value(li)).collect())
            .collect();
        let mut want = f.minimal_models();
        let mut got_sorted = got.clone();
        for m in &mut got_sorted {
            m.sort();
        }
        got_sorted.sort();
        want.sort();
        // The pooled version may simplify harder (absorption), but the set
        // of minimal models is canonical.
        assert_eq!(got_sorted, want);
    }

    #[test]
    fn empty_connectives_via_fold() {
        let mut p: BfPool<u32> = BfPool::new();
        assert_eq!(p.all(std::iter::empty()), BfId::TRUE);
        assert_eq!(p.any(std::iter::empty()), BfId::FALSE);
        assert_eq!(*p.minimal_models(BfId::TRUE), vec![Vec::<u32>::new()]);
        assert!(p.minimal_models(BfId::FALSE).is_empty());
    }
}
