//! Positive Boolean formulas `B⁺(X)` over a set of atoms (the transition
//! conditions of alternating automata).

use std::fmt;

/// A positive Boolean formula with atoms of type `A`.
///
/// No negation — alternating-automaton transitions are monotone, which is
/// what makes their acceptance games determined by simple fixpoints.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Bf<A> {
    /// Constant true.
    True,
    /// Constant false.
    False,
    /// An atom.
    Lit(A),
    /// Conjunction (empty = true).
    And(Vec<Bf<A>>),
    /// Disjunction (empty = false).
    Or(Vec<Bf<A>>),
}

impl<A> Bf<A> {
    /// Conjunction of two formulas with light simplification.
    pub fn and(self, other: Bf<A>) -> Bf<A> {
        match (self, other) {
            (Bf::True, x) | (x, Bf::True) => x,
            (Bf::False, _) | (_, Bf::False) => Bf::False,
            (Bf::And(mut xs), Bf::And(ys)) => {
                xs.extend(ys);
                Bf::And(xs)
            }
            (Bf::And(mut xs), y) => {
                xs.push(y);
                Bf::And(xs)
            }
            // Conjunction is commutative, so appending (O(1) amortized)
            // instead of prepending (O(n)) keeps right-to-left folds over
            // large conjunctions linear instead of quadratic.
            (x, Bf::And(mut ys)) => {
                ys.push(x);
                Bf::And(ys)
            }
            (x, y) => Bf::And(vec![x, y]),
        }
    }

    /// Disjunction of two formulas with light simplification.
    pub fn or(self, other: Bf<A>) -> Bf<A> {
        match (self, other) {
            (Bf::False, x) | (x, Bf::False) => x,
            (Bf::True, _) | (_, Bf::True) => Bf::True,
            (Bf::Or(mut xs), Bf::Or(ys)) => {
                xs.extend(ys);
                Bf::Or(xs)
            }
            (Bf::Or(mut xs), y) => {
                xs.push(y);
                Bf::Or(xs)
            }
            // Same appending trick as `and`: disjunction is commutative.
            (x, Bf::Or(mut ys)) => {
                ys.push(x);
                Bf::Or(ys)
            }
            (x, y) => Bf::Or(vec![x, y]),
        }
    }

    /// Conjunction of many formulas.
    pub fn all(items: impl IntoIterator<Item = Bf<A>>) -> Bf<A> {
        items.into_iter().fold(Bf::True, Bf::and)
    }

    /// Disjunction of many formulas.
    pub fn any(items: impl IntoIterator<Item = Bf<A>>) -> Bf<A> {
        items.into_iter().fold(Bf::False, Bf::or)
    }

    /// Evaluates the formula under a valuation of atoms.
    pub fn eval(&self, val: &mut impl FnMut(&A) -> bool) -> bool {
        match self {
            Bf::True => true,
            Bf::False => false,
            Bf::Lit(a) => val(a),
            Bf::And(xs) => xs.iter().all(|x| x.eval(val)),
            Bf::Or(xs) => xs.iter().any(|x| x.eval(val)),
        }
    }

    /// Visits every atom.
    pub fn for_each_lit(&self, f: &mut impl FnMut(&A)) {
        match self {
            Bf::True | Bf::False => {}
            Bf::Lit(a) => f(a),
            Bf::And(xs) | Bf::Or(xs) => {
                for x in xs {
                    x.for_each_lit(f);
                }
            }
        }
    }

    /// Maps atoms to another type.
    pub fn map<B>(&self, f: &mut impl FnMut(&A) -> B) -> Bf<B> {
        match self {
            Bf::True => Bf::True,
            Bf::False => Bf::False,
            Bf::Lit(a) => Bf::Lit(f(a)),
            Bf::And(xs) => Bf::And(xs.iter().map(|x| x.map(f)).collect()),
            Bf::Or(xs) => Bf::Or(xs.iter().map(|x| x.map(f)).collect()),
        }
    }
}

impl<A: Clone + Ord> Bf<A> {
    /// Enumerates the *minimal models* of the formula: the ⊆-minimal sets of
    /// atoms whose truth makes the formula true. Used by the alternating→
    /// nondeterministic translation.
    pub fn minimal_models(&self) -> Vec<Vec<A>> {
        fn models<A: Clone + Ord>(f: &Bf<A>) -> Vec<Vec<A>> {
            match f {
                Bf::True => vec![vec![]],
                Bf::False => vec![],
                Bf::Lit(a) => vec![vec![a.clone()]],
                Bf::Or(xs) => {
                    let mut out = Vec::new();
                    for x in xs {
                        out.extend(models(x));
                    }
                    out
                }
                Bf::And(xs) => {
                    let mut out: Vec<Vec<A>> = vec![vec![]];
                    for x in xs {
                        let ms = models(x);
                        let mut next = Vec::new();
                        for base in &out {
                            for m in &ms {
                                let mut u = base.clone();
                                u.extend(m.iter().cloned());
                                u.sort();
                                u.dedup();
                                next.push(u);
                            }
                        }
                        out = next;
                    }
                    out
                }
            }
        }
        // Prune non-minimal models.
        let mut ms = models(self);
        ms.sort_by_key(Vec::len);
        let mut out: Vec<Vec<A>> = Vec::new();
        'outer: for m in ms {
            for kept in &out {
                if kept.iter().all(|a| m.contains(a)) {
                    continue 'outer;
                }
            }
            out.push(m);
        }
        out
    }
}

impl<A: fmt::Display> fmt::Display for Bf<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bf::True => write!(f, "⊤"),
            Bf::False => write!(f, "⊥"),
            Bf::Lit(a) => write!(f, "{a}"),
            Bf::And(xs) => {
                write!(f, "(")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            Bf::Or(xs) => {
                write!(f, "(")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smart_constructors_simplify() {
        let t: Bf<u32> = Bf::True;
        assert_eq!(t.clone().and(Bf::Lit(1)), Bf::Lit(1));
        assert_eq!(Bf::<u32>::False.and(Bf::Lit(1)), Bf::False);
        assert_eq!(Bf::<u32>::False.or(Bf::Lit(2)), Bf::Lit(2));
        assert_eq!(t.or(Bf::Lit(2)), Bf::True);
    }

    #[test]
    fn eval_respects_structure() {
        let f = Bf::Lit(1).and(Bf::Lit(2).or(Bf::Lit(3)));
        assert!(f.eval(&mut |&a| a == 1 || a == 2));
        assert!(f.eval(&mut |&a| a == 1 || a == 3));
        assert!(!f.eval(&mut |&a| a == 2 || a == 3));
    }

    #[test]
    fn minimal_models_of_dnf() {
        let f = (Bf::Lit(1).and(Bf::Lit(2))).or(Bf::Lit(3));
        let ms = f.minimal_models();
        assert_eq!(ms.len(), 2);
        assert!(ms.contains(&vec![3]));
        assert!(ms.contains(&vec![1, 2]));
    }

    #[test]
    fn minimal_models_prune_supersets() {
        // (1 ∨ (1 ∧ 2)) has minimal model {1} only.
        let f = Bf::Lit(1).or(Bf::Lit(1).and(Bf::Lit(2)));
        assert_eq!(f.minimal_models(), vec![vec![1]]);
    }

    #[test]
    fn empty_connectives() {
        assert!(Bf::<u32>::And(vec![]).eval(&mut |_| false));
        assert!(!Bf::<u32>::Or(vec![]).eval(&mut |_| true));
        assert_eq!(
            Bf::<u32>::And(vec![]).minimal_models(),
            vec![Vec::<u32>::new()]
        );
        assert!(Bf::<u32>::Or(vec![]).minimal_models().is_empty());
    }

    #[test]
    fn right_to_left_folds_stay_flat() {
        // Folding a large disjunction right-to-left hits the `(x, Or(ys))`
        // branch on every step; with the old `insert(0, x)` prepend this
        // was quadratic. The fold must still produce one flat connective.
        let n = 10_000u32;
        let f = (0..n).rev().fold(Bf::False, |acc, i| Bf::Lit(i).or(acc));
        match &f {
            Bf::Or(xs) => assert_eq!(xs.len(), n as usize),
            other => panic!("expected a flat Or, got {other:?}"),
        }
        let g = (0..n).rev().fold(Bf::True, |acc, i| Bf::Lit(i).and(acc));
        match &g {
            Bf::And(xs) => assert_eq!(xs.len(), n as usize),
            other => panic!("expected a flat And, got {other:?}"),
        }
    }

    #[test]
    fn map_and_collect_lits() {
        let f = Bf::Lit(1).and(Bf::Lit(2).or(Bf::Lit(3)));
        let g = f.map(&mut |&a| a * 10);
        let mut lits = Vec::new();
        g.for_each_lit(&mut |&a| lits.push(a));
        lits.sort();
        assert_eq!(lits, vec![10, 20, 30]);
    }
}
