//! Two-way alternating parity automata on finite labeled trees (Defs. 10–11
//! of the paper's appendix).
//!
//! A 2WAPA `A = (S, Γ, δ, s₀, Ω)` has transitions `δ: S × Γ → B⁺(tran(A))`
//! where the transition atoms `⟨α⟩s` / `[α]s` move a copy of the automaton
//! up (`α = -1`), nowhere (`α = 0`), or to some/all children (`α = ∗`).
//!
//! The paper's automata assign every state priority 1 ("only finite trees
//! are accepted"), i.e. accepting runs are finite — acceptance is then a
//! **least** fixpoint; the dual all-even fragment is a **greatest**
//! fixpoint. Mixed parity conditions are rejected explicitly
//! ([`TwapaError::MixedPriorities`]) instead of being silently mis-decided.
//!
//! For automata whose transitions never move **up**, we implement the
//! classical alternating→nondeterministic subset translation
//! ([`Twapa::to_nta`]), which reduces emptiness and the infinity problem to
//! the corresponding (polynomial) NTA questions — the route Prop. 31 takes.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

use crate::bformula::Bf;
use crate::nta::{Nta, NtaTransition};
use crate::pool::{BfId, BfPool, EvalCache};
use crate::tree::LTree;

/// Direction of a transition atom: `-1`, `0`, or `∗` in the paper.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Dir {
    /// `-1`: move to the parent.
    Up,
    /// `0`: stay at the current node.
    Stay,
    /// `∗`: move to a child.
    Down,
}

/// A transition atom `⟨α⟩s` (`exists = true`) or `[α]s` (`exists = false`).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Transition {
    /// Diamond (`⟨α⟩`, some target node) vs. box (`[α]`, all target nodes).
    pub exists: bool,
    /// The direction `α`.
    pub dir: Dir,
    /// The successor state.
    pub state: usize,
}

impl Transition {
    /// `⟨α⟩s`.
    pub fn diamond(dir: Dir, state: usize) -> Self {
        Transition {
            exists: true,
            dir,
            state,
        }
    }

    /// `[α]s`.
    pub fn boxed(dir: Dir, state: usize) -> Self {
        Transition {
            exists: false,
            dir,
            state,
        }
    }
}

impl fmt::Display for Transition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = match self.dir {
            Dir::Up => "-1",
            Dir::Stay => "0",
            Dir::Down => "*",
        };
        if self.exists {
            write!(f, "<{}>q{}", d, self.state)
        } else {
            write!(f, "[{}]q{}", d, self.state)
        }
    }
}

/// Classification of the parity condition.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum PriorityKind {
    /// All priorities odd: accepting runs are finite (least fixpoint).
    AllOdd,
    /// All priorities even: every run may continue forever (greatest
    /// fixpoint).
    AllEven,
    /// Mixed: a full parity-game solver would be required.
    Mixed,
}

/// Errors from 2WAPA algorithms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TwapaError {
    /// The automaton mixes odd and even priorities.
    MixedPriorities,
    /// `to_nta` requires an automaton without `Up` transitions.
    NotDownward,
}

impl fmt::Display for TwapaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TwapaError::MixedPriorities => {
                write!(f, "mixed parity priorities are not supported")
            }
            TwapaError::NotDownward => {
                write!(f, "operation requires an automaton without Up moves")
            }
        }
    }
}

impl std::error::Error for TwapaError {}

/// A two-way alternating parity automaton over labels `L`.
#[derive(Clone, Debug)]
pub struct Twapa<L: Eq + Hash + Clone> {
    /// Number of states (`0..num_states`).
    pub num_states: usize,
    /// The initial state `s₀`.
    pub initial: usize,
    /// Priority `Ω(s)` per state.
    pub priorities: Vec<usize>,
    /// The finite input alphabet `Γ`.
    pub alphabet: Vec<L>,
    /// Transition function; missing entries denote `false`.
    pub delta: HashMap<(usize, L), Bf<Transition>>,
}

impl<L: Eq + Hash + Clone> Twapa<L> {
    /// Classifies the parity condition.
    pub fn priority_kind(&self) -> PriorityKind {
        let odd = self.priorities.iter().any(|p| p % 2 == 1);
        let even = self.priorities.iter().any(|p| p % 2 == 0);
        match (odd, even) {
            (true, false) => PriorityKind::AllOdd,
            (false, true) => PriorityKind::AllEven,
            _ => PriorityKind::Mixed,
        }
    }

    fn delta_of(&self, s: usize, l: &L) -> Bf<Transition> {
        self.delta
            .get(&(s, l.clone()))
            .cloned()
            .unwrap_or(Bf::False)
    }

    /// Does the automaton accept the tree?
    ///
    /// Exact for pure-odd (least fixpoint) and pure-even (greatest
    /// fixpoint) priorities; mixed conditions yield an error.
    ///
    /// Transition formulas are interned into a shared [`BfPool`] up front,
    /// so every fixpoint round evaluates hash-consed node ids (memoized per
    /// valuation through an [`EvalCache`]) instead of re-cloning and
    /// re-walking formula trees per node/state.
    pub fn accepts(&self, tree: &LTree<L>) -> Result<bool, TwapaError> {
        let least = match self.priority_kind() {
            PriorityKind::AllOdd => true,
            PriorityKind::AllEven => false,
            PriorityKind::Mixed => return Err(TwapaError::MixedPriorities),
        };
        let n = tree.len();
        // Dense label index over the labels that actually occur in `tree`.
        let mut label_ids: HashMap<&L, usize> = HashMap::new();
        let mut node_label: Vec<usize> = Vec::with_capacity(n);
        for node in 0..n {
            let next = label_ids.len();
            node_label.push(*label_ids.entry(tree.label(node)).or_insert(next));
        }
        let mut pool: BfPool<Transition> = BfPool::new();
        let mut compiled = vec![BfId::FALSE; label_ids.len() * self.num_states];
        for ((s, l), f) in &self.delta {
            if let Some(&li) = label_ids.get(l) {
                compiled[li * self.num_states + s] = pool.intern_bf(f);
            }
        }
        let mut cache = EvalCache::new();
        let mut win = vec![vec![!least; self.num_states]; n];
        loop {
            let mut changed = false;
            for node in 0..n {
                for s in 0..self.num_states {
                    let cur = win[node][s];
                    // In a least fixpoint we only flip false→true; in a
                    // greatest fixpoint only true→false.
                    if cur == least {
                        continue;
                    }
                    let fid = compiled[node_label[node] * self.num_states + s];
                    let val = cache.eval(&pool, fid, &mut |t: &Transition| {
                        let targets: Vec<usize> = match t.dir {
                            Dir::Stay => vec![node],
                            Dir::Up => tree.parent(node).into_iter().collect(),
                            Dir::Down => tree.children(node).to_vec(),
                        };
                        if t.exists {
                            targets.iter().any(|&m| win[m][t.state])
                        } else {
                            targets.iter().all(|&m| win[m][t.state])
                        }
                    });
                    if val == least {
                        win[node][s] = least;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        Ok(win[0][self.initial])
    }

    /// Intersection of two automata over the same alphabet: a fresh initial
    /// state whose transition is the conjunction of both initial
    /// transitions (the standard linear-size construction for alternating
    /// automata; "A₁ ∩ A₂ … can be constructed in polynomial time").
    pub fn intersect(&self, other: &Twapa<L>) -> Twapa<L> {
        let off = self.num_states;
        let init = self.num_states + other.num_states;
        let mut delta: HashMap<(usize, L), Bf<Transition>> = self.delta.clone();
        for ((s, l), f) in &other.delta {
            delta.insert(
                (s + off, l.clone()),
                f.map(&mut |t| Transition {
                    state: t.state + off,
                    ..*t
                }),
            );
        }
        let mut alphabet = self.alphabet.clone();
        for l in &other.alphabet {
            if !alphabet.contains(l) {
                alphabet.push(l.clone());
            }
        }
        for l in &alphabet {
            let f1 = self.delta_of(self.initial, l);
            let f2 = other.delta_of(other.initial, l).map(&mut |t| Transition {
                state: t.state + off,
                ..*t
            });
            delta.insert((init, l.clone()), f1.and(f2));
        }
        let mut priorities = self.priorities.clone();
        priorities.extend_from_slice(&other.priorities);
        priorities.push(1);
        Twapa {
            num_states: init + 1,
            initial: init,
            priorities,
            alphabet,
            delta,
        }
    }

    /// Expands `Stay` moves away for the formula `f` under the label with
    /// index `li`, producing a pooled formula over `Down` atoms
    /// `(exists, state)` only. A cyclic `Stay` chain is rejecting under
    /// finite acceptance, hence replaced by `false`.
    fn expand_pooled(
        f: &Bf<Transition>,
        li: usize,
        dmap: &HashMap<(usize, usize), &Bf<Transition>>,
        chain: &mut Vec<usize>,
        pool: &mut BfPool<(bool, usize)>,
    ) -> Result<BfId, TwapaError> {
        Ok(match f {
            Bf::True => BfId::TRUE,
            Bf::False => BfId::FALSE,
            Bf::Lit(t) => match t.dir {
                Dir::Up => return Err(TwapaError::NotDownward),
                Dir::Down => pool.lit((t.exists, t.state)),
                Dir::Stay => {
                    if chain.contains(&t.state) {
                        BfId::FALSE
                    } else {
                        chain.push(t.state);
                        let r = match dmap.get(&(t.state, li)) {
                            Some(&g) => Self::expand_pooled(g, li, dmap, chain, pool)?,
                            None => BfId::FALSE,
                        };
                        chain.pop();
                        r
                    }
                }
            },
            Bf::And(xs) => {
                let mut out = BfId::TRUE;
                for x in xs {
                    let xi = Self::expand_pooled(x, li, dmap, chain, pool)?;
                    out = pool.and(out, xi);
                }
                out
            }
            Bf::Or(xs) => {
                let mut out = BfId::FALSE;
                for x in xs {
                    let xi = Self::expand_pooled(x, li, dmap, chain, pool)?;
                    out = pool.or(out, xi);
                }
                out
            }
        })
    }

    /// Translates a **downward** (no `Up` moves), **finite-acceptance**
    /// (all-odd priorities) automaton into an equivalent NTA over trees of
    /// branching degree at most `max_branching`, via the subset
    /// construction: an NTA state is the set of 2WAPA states that must
    /// accept from the current node.
    ///
    /// Downward expansions are hash-consed per `(state, label)` and the
    /// per-set conjunctions / minimal-model enumerations are memoized in
    /// the pool, so the exponential subset sweep shares all structurally
    /// repeated work.
    pub fn to_nta(&self, max_branching: usize) -> Result<Nta<L>, TwapaError> {
        if self.priority_kind() != PriorityKind::AllOdd {
            return Err(TwapaError::MixedPriorities);
        }
        // Label-indexed view of delta: no label clones or hashing of `L`
        // inside the expansion recursion.
        let lab_index: HashMap<&L, usize> = self
            .alphabet
            .iter()
            .enumerate()
            .map(|(i, l)| (l, i))
            .collect();
        let mut dmap: HashMap<(usize, usize), &Bf<Transition>> = HashMap::new();
        for ((s, l), f) in &self.delta {
            if let Some(&li) = lab_index.get(l) {
                dmap.insert((*s, li), f);
            }
        }
        let mut pool: BfPool<(bool, usize)> = BfPool::new();
        let mut expanded: HashMap<(usize, usize), BfId> = HashMap::new();
        let mut sets: Vec<Vec<usize>> = vec![vec![self.initial]];
        let mut index: HashMap<Vec<usize>, usize> = HashMap::new();
        index.insert(vec![self.initial], 0);
        let mut transitions: Vec<NtaTransition<L>> = Vec::new();
        let mut seen_trans: HashSet<(usize, usize, Vec<usize>)> = HashSet::new();
        let mut work = vec![0usize];

        while let Some(ti) = work.pop() {
            let set = sets[ti].clone();
            for li in 0..self.alphabet.len() {
                let l = &self.alphabet[li];
                // Conjunction of the expanded transition formulas.
                let mut formula = BfId::TRUE;
                for &s in &set {
                    let fid = match expanded.get(&(s, li)) {
                        Some(&fid) => fid,
                        None => {
                            let fid = match dmap.get(&(s, li)) {
                                Some(&f) => {
                                    Self::expand_pooled(f, li, &dmap, &mut vec![s], &mut pool)?
                                }
                                None => BfId::FALSE,
                            };
                            expanded.insert((s, li), fid);
                            fid
                        }
                    };
                    formula = pool.and(formula, fid);
                }
                let models = pool.minimal_models(formula);
                for model in models.iter() {
                    let universal: Vec<usize> = model
                        .iter()
                        .map(|&a| *pool.lit_value(a))
                        .filter(|(e, _)| !e)
                        .map(|(_, s)| s)
                        .collect();
                    let existential: Vec<usize> = model
                        .iter()
                        .map(|&a| *pool.lit_value(a))
                        .filter(|(e, _)| *e)
                        .map(|(_, s)| s)
                        .collect();
                    for k in 0..=max_branching {
                        if k == 0 {
                            if !existential.is_empty() {
                                continue;
                            }
                            let key = (ti, li, vec![]);
                            if seen_trans.insert(key) {
                                transitions.push(NtaTransition {
                                    state: ti,
                                    label: l.clone(),
                                    children: vec![],
                                });
                            }
                            continue;
                        }
                        // Distribute each existential obligation to a child.
                        let mut assignments: Vec<Vec<usize>> = vec![vec![]];
                        for _ in &existential {
                            let mut next = Vec::new();
                            for a in &assignments {
                                for c in 0..k {
                                    let mut a2 = a.clone();
                                    a2.push(c);
                                    next.push(a2);
                                }
                            }
                            assignments = next;
                        }
                        for assign in assignments {
                            let mut kids: Vec<Vec<usize>> = vec![universal.clone(); k];
                            for (si, &child) in assign.iter().enumerate() {
                                if !kids[child].contains(&existential[si]) {
                                    kids[child].push(existential[si]);
                                }
                            }
                            let mut child_ids = Vec::with_capacity(k);
                            for mut kid in kids {
                                kid.sort_unstable();
                                kid.dedup();
                                let id = *index.entry(kid.clone()).or_insert_with(|| {
                                    sets.push(kid.clone());
                                    work.push(sets.len() - 1);
                                    sets.len() - 1
                                });
                                child_ids.push(id);
                            }
                            let key = (ti, li, child_ids.clone());
                            if seen_trans.insert(key) {
                                transitions.push(NtaTransition {
                                    state: ti,
                                    label: l.clone(),
                                    children: child_ids,
                                });
                            }
                        }
                    }
                }
            }
        }

        Ok(Nta {
            num_states: sets.len(),
            roots: vec![0],
            transitions,
        })
    }

    /// Emptiness for downward finite-acceptance automata over trees of
    /// bounded branching.
    pub fn is_empty(&self, max_branching: usize) -> Result<bool, TwapaError> {
        Ok(self.to_nta(max_branching)?.is_empty())
    }

    /// The infinity problem (is `L(A)` infinite?) for downward
    /// finite-acceptance automata over trees of bounded branching — the
    /// question deciding UCQ rewritability in Prop. 31.
    pub fn is_infinite(&self, max_branching: usize) -> Result<bool, TwapaError> {
        Ok(self.to_nta(max_branching)?.is_infinite())
    }
}

impl<L: Eq + Hash + Clone + Sync> Twapa<L> {
    /// Budget-aware, parallel emptiness: the subset translation runs
    /// inline, then the NTA fixpoint runs on `threads` workers with
    /// early-exit once the initial state set is decided. `Ok(None)` means
    /// the budget expired before a verdict.
    pub fn is_empty_with(
        &self,
        max_branching: usize,
        threads: usize,
        budget: &omq_chase::Budget,
    ) -> Result<Option<bool>, TwapaError> {
        Ok(self.to_nta(max_branching)?.is_empty_with(threads, budget))
    }

    /// Budget-aware, parallel infinity test; `Ok(None)` on budget expiry.
    pub fn is_infinite_with(
        &self,
        max_branching: usize,
        threads: usize,
        budget: &omq_chase::Budget,
    ) -> Result<Option<bool>, TwapaError> {
        Ok(self
            .to_nta(max_branching)?
            .is_infinite_with(threads, budget))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `TwapaError` is a well-behaved `std::error::Error`: every variant
    /// has a non-empty, non-panicking `Display` and no spurious source.
    #[test]
    fn error_display_and_source() {
        use std::error::Error;
        for e in [TwapaError::MixedPriorities, TwapaError::NotDownward] {
            assert!(!e.to_string().is_empty());
            assert!(e.source().is_none());
        }
        let boxed: Box<dyn Error> = Box::new(TwapaError::MixedPriorities);
        assert!(boxed.to_string().contains("parity"));
    }

    /// ⟨∗⟩-reachability automaton: accepts trees with some 'b'-labeled node.
    fn reach_b() -> Twapa<char> {
        let mut delta = HashMap::new();
        // In state 0 at 'b': accept.
        delta.insert((0, 'b'), Bf::True);
        // In state 0 at 'a': some child reaches b.
        delta.insert((0, 'a'), Bf::Lit(Transition::diamond(Dir::Down, 0)));
        Twapa {
            num_states: 1,
            initial: 0,
            priorities: vec![1],
            alphabet: vec!['a', 'b'],
            delta,
        }
    }

    /// [∗]-safety automaton: accepts trees where every node is 'a'.
    fn all_a() -> Twapa<char> {
        let mut delta = HashMap::new();
        delta.insert((0, 'a'), Bf::Lit(Transition::boxed(Dir::Down, 0)));
        Twapa {
            num_states: 1,
            initial: 0,
            priorities: vec![1],
            alphabet: vec!['a', 'b'],
            delta,
        }
    }

    fn chain(labels: &[char]) -> LTree<char> {
        let mut t = LTree::new(labels[0]);
        let mut cur = 0;
        for &l in &labels[1..] {
            cur = t.add_child(cur, l);
        }
        t
    }

    #[test]
    fn membership_reachability() {
        let aut = reach_b();
        assert!(aut.accepts(&chain(&['a', 'a', 'b'])).unwrap());
        assert!(!aut.accepts(&chain(&['a', 'a', 'a'])).unwrap());
        assert!(aut.accepts(&chain(&['b'])).unwrap());
    }

    #[test]
    fn membership_safety() {
        let aut = all_a();
        assert!(aut.accepts(&chain(&['a', 'a', 'a'])).unwrap());
        assert!(!aut.accepts(&chain(&['a', 'b'])).unwrap());
        // Box over no children is vacuous: single 'a' accepted.
        assert!(aut.accepts(&chain(&['a'])).unwrap());
    }

    #[test]
    fn membership_branches() {
        let aut = reach_b();
        let mut t = LTree::new('a');
        t.add_child(0, 'a');
        let right = t.add_child(0, 'a');
        t.add_child(right, 'b');
        assert!(aut.accepts(&t).unwrap());
    }

    #[test]
    fn two_way_updown() {
        // Accepts trees where the root has label 'r' and some node's parent
        // chain can be climbed back: state 0 goes down to a leaf-ish 'x'
        // then state 1 climbs up checking... simpler: state 0 at 'x' moves
        // Up to state 1; state 1 at 'r' accepts.
        let mut delta = HashMap::new();
        delta.insert((0, 'r'), Bf::Lit(Transition::diamond(Dir::Down, 0)));
        delta.insert((0, 'x'), Bf::Lit(Transition::diamond(Dir::Up, 1)));
        delta.insert((1, 'r'), Bf::True);
        let aut = Twapa {
            num_states: 2,
            initial: 0,
            priorities: vec![1, 1],
            alphabet: vec!['r', 'x'],
            delta,
        };
        let mut t = LTree::new('r');
        t.add_child(0, 'x');
        assert!(aut.accepts(&t).unwrap());
        // Depth-2 'x': the Up move lands on 'x', where state 1 is stuck.
        let mut t2 = LTree::new('r');
        let c = t2.add_child(0, 'x');
        t2.add_child(c, 'x');
        // Still accepted: the depth-1 'x' exists... it does not — children
        // of the root: only c with label 'x'; 0 moves down to c, Up from c
        // lands at root 'r': accepted.
        assert!(aut.accepts(&t2).unwrap());
        // Two-way move is required: Up from the deep 'x' lands on 'x'.
        assert!(aut.to_nta(2).is_err());
    }

    #[test]
    fn stay_moves_expand() {
        // state 0 --0--> state 1; state 1 at 'a' demands a 'b' child.
        let mut delta = HashMap::new();
        delta.insert((0, 'a'), Bf::Lit(Transition::diamond(Dir::Stay, 1)));
        delta.insert((1, 'a'), Bf::Lit(Transition::diamond(Dir::Down, 2)));
        delta.insert((2, 'b'), Bf::True);
        let aut = Twapa {
            num_states: 3,
            initial: 0,
            priorities: vec![1, 1, 1],
            alphabet: vec!['a', 'b'],
            delta,
        };
        assert!(aut.accepts(&chain(&['a', 'b'])).unwrap());
        assert!(!aut.accepts(&chain(&['a', 'a'])).unwrap());
        let nta = aut.to_nta(2).unwrap();
        assert!(nta.accepts(&chain(&['a', 'b'])));
        assert!(!nta.accepts(&chain(&['a', 'a'])));
    }

    #[test]
    fn stay_cycle_is_rejecting() {
        let mut delta = HashMap::new();
        delta.insert((0, 'a'), Bf::Lit(Transition::diamond(Dir::Stay, 0)));
        let aut = Twapa {
            num_states: 1,
            initial: 0,
            priorities: vec![1],
            alphabet: vec!['a'],
            delta,
        };
        assert!(!aut.accepts(&chain(&['a'])).unwrap());
        assert!(aut.is_empty(2).unwrap());
    }

    #[test]
    fn nta_translation_matches_membership() {
        let aut = reach_b();
        let nta = aut.to_nta(2).unwrap();
        for t in [
            chain(&['a', 'b']),
            chain(&['b']),
            chain(&['a', 'a', 'a']),
            chain(&['a']),
        ] {
            assert_eq!(
                nta.accepts(&t),
                aut.accepts(&t).unwrap(),
                "mismatch on {t:?}"
            );
        }
    }

    #[test]
    fn emptiness_and_infinity_via_nta() {
        // reach_b accepts infinitely many trees.
        assert!(!reach_b().is_empty(2).unwrap());
        assert!(reach_b().is_infinite(2).unwrap());
        // An automaton accepting only the single-node 'b' tree.
        let mut delta = HashMap::new();
        delta.insert((0, 'b'), Bf::Lit(Transition::boxed(Dir::Down, 1)));
        let aut = Twapa {
            num_states: 2,
            initial: 0,
            priorities: vec![1, 1],
            alphabet: vec!['a', 'b'],
            delta,
        };
        // State 1 has no transitions, so [∗]1 only holds at leaves.
        assert!(!aut.is_empty(2).unwrap());
        assert!(!aut.is_infinite(2).unwrap());
    }

    #[test]
    fn intersection_combines_languages() {
        let both = reach_b().intersect(&all_a());
        // all_a forbids 'b' anywhere, reach_b demands one: empty.
        assert!(!both.accepts(&chain(&['a', 'b'])).unwrap());
        assert!(!both.accepts(&chain(&['a', 'a'])).unwrap());
        assert!(both.is_empty(2).unwrap());
    }

    #[test]
    fn all_even_greatest_fixpoint() {
        // An automaton that loops forever on 'a'-chains: with even
        // priorities it accepts the infinite unrolling... on *finite* trees
        // the box over a leaf's children is vacuous, so it accepts any
        // all-'a' tree; with odd priorities the Stay-loop example above
        // rejects.
        let mut delta = HashMap::new();
        delta.insert((0, 'a'), Bf::Lit(Transition::boxed(Dir::Down, 0)));
        let aut = Twapa {
            num_states: 1,
            initial: 0,
            priorities: vec![0],
            alphabet: vec!['a'],
            delta,
        };
        assert_eq!(aut.priority_kind(), PriorityKind::AllEven);
        assert!(aut.accepts(&chain(&['a', 'a'])).unwrap());
    }

    #[test]
    fn mixed_priorities_rejected() {
        let aut = Twapa::<char> {
            num_states: 2,
            initial: 0,
            priorities: vec![0, 1],
            alphabet: vec!['a'],
            delta: HashMap::new(),
        };
        assert_eq!(
            aut.accepts(&LTree::new('a')),
            Err(TwapaError::MixedPriorities)
        );
    }
}
