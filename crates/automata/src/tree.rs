//! Finite labeled trees (the `Γ-labeled trees` of §5.2).

/// A finite rooted tree with node labels of type `L`. Node `0` is the root.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LTree<L> {
    labels: Vec<L>,
    children: Vec<Vec<usize>>,
    parent: Vec<Option<usize>>,
}

impl<L> LTree<L> {
    /// A tree with just a root.
    pub fn new(root_label: L) -> Self {
        LTree {
            labels: vec![root_label],
            children: vec![vec![]],
            parent: vec![None],
        }
    }

    /// Adds a child of `parent`, returning the new node id.
    ///
    /// # Panics
    /// Panics if `parent` is out of range.
    pub fn add_child(&mut self, parent: usize, label: L) -> usize {
        assert!(parent < self.labels.len(), "no such node");
        let id = self.labels.len();
        self.labels.push(label);
        self.children.push(vec![]);
        self.parent.push(Some(parent));
        self.children[parent].push(id);
        id
    }

    /// The label of `node`.
    pub fn label(&self, node: usize) -> &L {
        &self.labels[node]
    }

    /// Mutable label access.
    pub fn label_mut(&mut self, node: usize) -> &mut L {
        &mut self.labels[node]
    }

    /// Children of `node`, in insertion order.
    pub fn children(&self, node: usize) -> &[usize] {
        &self.children[node]
    }

    /// Parent of `node` (`None` for the root).
    pub fn parent(&self, node: usize) -> Option<usize> {
        self.parent[node]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Always false — a tree has at least its root.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// All node ids, root first (ids are in BFS-compatible creation order
    /// only if built that way; this is just `0..len`).
    pub fn nodes(&self) -> impl Iterator<Item = usize> {
        0..self.labels.len()
    }

    /// Depth of `node` (root = 0).
    pub fn depth(&self, node: usize) -> usize {
        let mut d = 0;
        let mut n = node;
        while let Some(p) = self.parent[n] {
            d += 1;
            n = p;
        }
        d
    }

    /// Maximum depth over all nodes.
    pub fn height(&self) -> usize {
        self.nodes().map(|n| self.depth(n)).max().unwrap_or(0)
    }

    /// Maximum branching degree.
    pub fn branching_degree(&self) -> usize {
        self.children.iter().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_navigate() {
        let mut t = LTree::new("root");
        let a = t.add_child(0, "a");
        let b = t.add_child(0, "b");
        let c = t.add_child(a, "c");
        assert_eq!(t.len(), 4);
        assert_eq!(t.children(0), &[a, b]);
        assert_eq!(t.parent(c), Some(a));
        assert_eq!(t.parent(0), None);
        assert_eq!(*t.label(c), "c");
        assert_eq!(t.depth(c), 2);
        assert_eq!(t.height(), 2);
        assert_eq!(t.branching_degree(), 2);
    }

    #[test]
    fn label_mutation() {
        let mut t = LTree::new(1);
        *t.label_mut(0) = 42;
        assert_eq!(*t.label(0), 42);
    }
}
