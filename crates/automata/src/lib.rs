//! # omq-automata
//!
//! Tree-automata machinery for the guarded containment and UCQ-rewritability
//! procedures (paper §5.3 and §7.2): positive Boolean formulas `B⁺(X)`,
//! finite labeled trees, two-way alternating parity automata (**2WAPA**,
//! Defs. 10–11 of the paper's appendix), and nondeterministic top-down tree
//! automata (**NTA**) with emptiness, membership, and *infinity* tests (the
//! infinity problem is what decides UCQ rewritability, Prop. 31).
//!
//! The paper's constructions only ever use the *finite-acceptance* fragment
//! of 2WAPA: every state has odd priority 1, so accepting runs are exactly
//! the finite ones (see "The parity condition. We set Ω(s) := 1 for all
//! s ∈ S. This means that only finite trees are accepted" in the proof of
//! Lemma 24). Membership for this fragment is a least fixpoint; the dual
//! all-even fragment is a greatest fixpoint; mixed priorities are rejected
//! with an explicit error rather than silently mis-decided.

pub mod bformula;
pub mod nta;
pub mod pool;
pub mod tree;
pub mod twapa;

pub use bformula::Bf;
pub use nta::{Nta, NtaTransition};
pub use pool::{BfId, BfPool, EvalCache};
pub use tree::LTree;
pub use twapa::{Dir, PriorityKind, Transition, Twapa, TwapaError};
