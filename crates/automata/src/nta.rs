//! Nondeterministic top-down tree automata (NTA) on finite labeled trees
//! with bounded branching, with emptiness, membership, and the *infinity*
//! test used by the UCQ-rewritability decision (Prop. 31: "checking whether
//! L(A) is infinite is feasible in exponential time in the number of states
//! and polynomial time in the size of the alphabet").
//!
//! Each decision question exists twice: a plain sequential method (the
//! reference implementation) and a `*_with(threads, budget)` variant that
//! runs the underlying least fixpoint as chunked Jacobi rounds on the
//! workspace's scoped worker pool. The parallel rounds race only on
//! *monotone* atomic flags, and rounds repeat until nothing changes, so the
//! computed set is the unique least fixpoint — bit-identical to the
//! sequential reference at any thread count. The `_with` variants also poll
//! a cooperative [`Budget`] between rounds (returning `None` on expiry) and
//! stop early once a root state is decided.

use std::collections::HashSet;
use std::hash::Hash;
use std::sync::atomic::{AtomicBool, Ordering};

use omq_chase::{effective_threads, parallel_indexed, Budget};

use crate::tree::LTree;

/// Transitions per parallel work item: small enough to load-balance, large
/// enough that the fetch-add handout is noise.
const CHUNK: usize = 512;

/// One transition: a node in state `state` with label `label` may have
/// exactly `children.len()` children, carrying the listed states in order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NtaTransition<L> {
    /// State of the node.
    pub state: usize,
    /// Required node label.
    pub label: L,
    /// States of the children (empty for leaves).
    pub children: Vec<usize>,
}

/// A nondeterministic tree automaton.
#[derive(Clone, Debug)]
pub struct Nta<L> {
    /// Number of states (`0..num_states`).
    pub num_states: usize,
    /// States allowed at the root.
    pub roots: Vec<usize>,
    /// The transition relation.
    pub transitions: Vec<NtaTransition<L>>,
}

impl<L: Eq + Hash + Clone> Nta<L> {
    /// Does the automaton accept the tree?
    pub fn accepts(&self, tree: &LTree<L>) -> bool {
        // Bottom-up: possible states per node.
        let n = tree.len();
        let mut poss: Vec<HashSet<usize>> = vec![HashSet::new(); n];
        // Process nodes in reverse creation order only works if children
        // have larger ids; LTree guarantees that (children are created after
        // parents).
        for node in (0..n).rev() {
            let kids = tree.children(node);
            for t in &self.transitions {
                if &t.label != tree.label(node) || t.children.len() != kids.len() {
                    continue;
                }
                if t.children
                    .iter()
                    .zip(kids)
                    .all(|(&q, &k)| poss[k].contains(&q))
                {
                    poss[node].insert(t.state);
                }
            }
        }
        self.roots.iter().any(|r| poss[0].contains(r))
    }

    /// The set of *realizable* states: those from which some finite tree can
    /// be derived (least fixpoint).
    fn realizable(&self) -> Vec<bool> {
        let mut real = vec![false; self.num_states];
        loop {
            let mut changed = false;
            for t in &self.transitions {
                if !real[t.state] && t.children.iter().all(|&c| real[c]) {
                    real[t.state] = true;
                    changed = true;
                }
            }
            if !changed {
                return real;
            }
        }
    }

    /// Is the language empty?
    pub fn is_empty(&self) -> bool {
        let real = self.realizable();
        !self.roots.iter().any(|&r| real[r])
    }

    /// The set of *useful* states: realizable and reachable from a
    /// realizable root through transitions whose siblings are realizable.
    fn useful(&self) -> Vec<bool> {
        let real = self.realizable();
        let mut useful = vec![false; self.num_states];
        let mut stack: Vec<usize> = self.roots.iter().copied().filter(|&r| real[r]).collect();
        for &r in &stack {
            useful[r] = true;
        }
        while let Some(q) = stack.pop() {
            for t in &self.transitions {
                if t.state != q || !t.children.iter().all(|&c| real[c]) {
                    continue;
                }
                for &c in &t.children {
                    if !useful[c] {
                        useful[c] = true;
                        stack.push(c);
                    }
                }
            }
        }
        useful
    }

    /// Is the language infinite?
    ///
    /// With a finite alphabet and bounded rank, `L(A)` is infinite iff some
    /// useful state lies on a cycle of the parent→child derivation graph
    /// restricted to useful states (pumping that cycle yields arbitrarily
    /// deep accepted trees; conversely unbounded depth forces a repeated
    /// state on a root-to-leaf path).
    pub fn is_infinite(&self) -> bool {
        if self.is_empty() {
            return false;
        }
        let real = self.realizable();
        let useful = self.useful();
        // Edge q -> c for transitions with all-realizable children.
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for t in &self.transitions {
            if useful[t.state] && t.children.iter().all(|&c| real[c]) {
                for &c in &t.children {
                    if useful[c] {
                        edges.push((t.state, c));
                    }
                }
            }
        }
        // Cycle detection among useful states.
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Gray,
            Black,
        }
        let mut mark = vec![Mark::White; self.num_states];
        fn dfs(q: usize, edges: &[(usize, usize)], mark: &mut [Mark]) -> bool {
            mark[q] = Mark::Gray;
            for &(a, b) in edges {
                if a == q {
                    match mark[b] {
                        Mark::Gray => return true,
                        Mark::White => {
                            if dfs(b, edges, mark) {
                                return true;
                            }
                        }
                        Mark::Black => {}
                    }
                }
            }
            mark[q] = Mark::Black;
            false
        }
        for q in 0..self.num_states {
            if useful[q] && mark[q] == Mark::White && dfs(q, &edges, &mut mark) {
                return true;
            }
        }
        false
    }
}

impl<L: Eq + Hash + Clone + Sync> Nta<L> {
    /// One Jacobi-style fixpoint: chunked sweeps over the transitions until
    /// a sweep changes nothing. `stop_at_root` breaks out as soon as some
    /// root becomes realizable (the emptiness early exit); the returned
    /// flag records whether that happened. Returns `None` when `budget`
    /// expires between rounds.
    fn realizable_rounds(
        &self,
        threads: usize,
        budget: &Budget,
        stop_at_root: bool,
    ) -> Option<(Vec<bool>, bool)> {
        let _span = omq_obs::span("automata.fixpoint");
        let nt = self.transitions.len();
        let chunks = nt.div_ceil(CHUNK);
        let workers = effective_threads(threads, chunks.max(1));
        let real: Vec<AtomicBool> = (0..self.num_states)
            .map(|_| AtomicBool::new(false))
            .collect();
        let mut rounds: u64 = 0;
        let mut decided = false;
        loop {
            rounds += 1;
            if budget.expired() {
                omq_obs::counter("fixpoint_rounds", rounds);
                return None;
            }
            let changed = AtomicBool::new(false);
            let sweep = |lo: usize, hi: usize| {
                for t in &self.transitions[lo..hi] {
                    if !real[t.state].load(Ordering::Relaxed)
                        && t.children.iter().all(|&c| real[c].load(Ordering::Relaxed))
                    {
                        real[t.state].store(true, Ordering::Relaxed);
                        changed.store(true, Ordering::Relaxed);
                    }
                }
            };
            if workers <= 1 {
                sweep(0, nt);
            } else {
                parallel_indexed(
                    workers,
                    chunks,
                    || (),
                    |_, ci| sweep(ci * CHUNK, nt.min(ci * CHUNK + CHUNK)),
                );
            }
            if stop_at_root && self.roots.iter().any(|&r| real[r].load(Ordering::Relaxed)) {
                decided = true;
                break;
            }
            if !changed.load(Ordering::Relaxed) {
                break;
            }
        }
        omq_obs::counter("fixpoint_rounds", rounds);
        Some((
            real.into_iter().map(AtomicBool::into_inner).collect(),
            decided,
        ))
    }

    /// Parallel [`realizable`](Nta::realizable): the full least fixpoint,
    /// identical to the sequential reference at any thread count. `None`
    /// when the budget expires first.
    pub fn realizable_with(&self, threads: usize, budget: &Budget) -> Option<Vec<bool>> {
        self.realizable_rounds(threads, budget, false)
            .map(|(v, _)| v)
    }

    /// Parallel, budget-aware emptiness with early exit: stops as soon as
    /// some root state is proven realizable (language nonempty) instead of
    /// running the fixpoint to completion.
    pub fn is_empty_with(&self, threads: usize, budget: &Budget) -> Option<bool> {
        let (real, decided) = self.realizable_rounds(threads, budget, true)?;
        if decided {
            return Some(false);
        }
        Some(!self.roots.iter().any(|&r| real[r]))
    }

    /// Reachability closure over `real`-children transitions, as parallel
    /// rounds (same monotone-flag argument as the realizability fixpoint).
    fn useful_from(&self, real: &[bool], threads: usize, budget: &Budget) -> Option<Vec<bool>> {
        let nt = self.transitions.len();
        let chunks = nt.div_ceil(CHUNK);
        let workers = effective_threads(threads, chunks.max(1));
        let useful: Vec<AtomicBool> = (0..self.num_states)
            .map(|_| AtomicBool::new(false))
            .collect();
        for &r in &self.roots {
            if real[r] {
                useful[r].store(true, Ordering::Relaxed);
            }
        }
        loop {
            if budget.expired() {
                return None;
            }
            let changed = AtomicBool::new(false);
            let sweep = |lo: usize, hi: usize| {
                for t in &self.transitions[lo..hi] {
                    if useful[t.state].load(Ordering::Relaxed)
                        && t.children.iter().all(|&c| real[c])
                    {
                        for &c in &t.children {
                            if !useful[c].swap(true, Ordering::Relaxed) {
                                changed.store(true, Ordering::Relaxed);
                            }
                        }
                    }
                }
            };
            if workers <= 1 {
                sweep(0, nt);
            } else {
                parallel_indexed(
                    workers,
                    chunks,
                    || (),
                    |_, ci| sweep(ci * CHUNK, nt.min(ci * CHUNK + CHUNK)),
                );
            }
            if !changed.load(Ordering::Relaxed) {
                break;
            }
        }
        Some(useful.into_iter().map(AtomicBool::into_inner).collect())
    }

    /// Parallel [`useful`](Nta::useful); `None` on budget expiry.
    pub fn useful_with(&self, threads: usize, budget: &Budget) -> Option<Vec<bool>> {
        let real = self.realizable_with(threads, budget)?;
        self.useful_from(&real, threads, budget)
    }

    /// Parallel, budget-aware [`is_infinite`](Nta::is_infinite). The
    /// realizability and usefulness fixpoints run on the worker pool; the
    /// final cycle check is an iterative DFS over an adjacency index
    /// (`O(V + E)` instead of the reference's per-node edge scans).
    pub fn is_infinite_with(&self, threads: usize, budget: &Budget) -> Option<bool> {
        let real = self.realizable_with(threads, budget)?;
        if !self.roots.iter().any(|&r| real[r]) {
            return Some(false);
        }
        let useful = self.useful_from(&real, threads, budget)?;
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); self.num_states];
        for t in &self.transitions {
            if useful[t.state] && t.children.iter().all(|&c| real[c]) {
                for &c in &t.children {
                    if useful[c] {
                        adj[t.state].push(c);
                    }
                }
            }
        }
        // Iterative gray/black DFS (no recursion: subset automata can have
        // long derivation chains).
        const WHITE: u8 = 0;
        const GRAY: u8 = 1;
        const BLACK: u8 = 2;
        let mut mark = vec![WHITE; self.num_states];
        let mut stack: Vec<(usize, usize)> = Vec::new();
        for start in 0..self.num_states {
            if !useful[start] || mark[start] != WHITE {
                continue;
            }
            mark[start] = GRAY;
            stack.push((start, 0));
            while let Some(&mut (q, ref mut next)) = stack.last_mut() {
                if *next < adj[q].len() {
                    let c = adj[q][*next];
                    *next += 1;
                    match mark[c] {
                        GRAY => return Some(true),
                        WHITE => {
                            mark[c] = GRAY;
                            stack.push((c, 0));
                        }
                        _ => {}
                    }
                } else {
                    mark[q] = BLACK;
                    stack.pop();
                }
            }
        }
        Some(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Automaton accepting trees labeled 'a' everywhere, any shape up to
    /// binary branching.
    fn all_a() -> Nta<char> {
        Nta {
            num_states: 1,
            roots: vec![0],
            transitions: vec![
                NtaTransition {
                    state: 0,
                    label: 'a',
                    children: vec![],
                },
                NtaTransition {
                    state: 0,
                    label: 'a',
                    children: vec![0],
                },
                NtaTransition {
                    state: 0,
                    label: 'a',
                    children: vec![0, 0],
                },
            ],
        }
    }

    #[test]
    fn accepts_matching_tree() {
        let aut = all_a();
        let mut t = LTree::new('a');
        let c = t.add_child(0, 'a');
        t.add_child(c, 'a');
        t.add_child(0, 'a');
        assert!(aut.accepts(&t));
        let mut bad = LTree::new('a');
        bad.add_child(0, 'b');
        assert!(!aut.accepts(&bad));
    }

    #[test]
    fn emptiness_and_infinity() {
        let aut = all_a();
        assert!(!aut.is_empty());
        assert!(aut.is_infinite());
    }

    /// Accepts exactly one tree: a single 'b' leaf.
    #[test]
    fn finite_language() {
        let aut = Nta {
            num_states: 1,
            roots: vec![0],
            transitions: vec![NtaTransition {
                state: 0,
                label: 'b',
                children: vec![],
            }],
        };
        assert!(!aut.is_empty());
        assert!(!aut.is_infinite());
        assert!(aut.accepts(&LTree::new('b')));
        let mut two = LTree::new('b');
        two.add_child(0, 'b');
        assert!(!two.is_empty());
        assert!(!aut.accepts(&two));
    }

    /// A state that can only recurse forever is not realizable.
    #[test]
    fn unrealizable_state_means_empty() {
        let aut = Nta {
            num_states: 1,
            roots: vec![0],
            transitions: vec![NtaTransition {
                state: 0,
                label: 'a',
                children: vec![0],
            }],
        };
        assert!(aut.is_empty());
        assert!(!aut.is_infinite());
    }

    /// Chain of fixed length: finite language even with multiple states.
    #[test]
    fn bounded_depth_language_is_finite() {
        // root state 0 -> child 1 -> leaf; no cycles.
        let aut = Nta {
            num_states: 2,
            roots: vec![0],
            transitions: vec![
                NtaTransition {
                    state: 0,
                    label: 'a',
                    children: vec![1],
                },
                NtaTransition {
                    state: 1,
                    label: 'a',
                    children: vec![],
                },
            ],
        };
        assert!(!aut.is_empty());
        assert!(!aut.is_infinite());
    }

    /// Deterministic SplitMix64 stream for the randomized differentials.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        fn below(&mut self, n: u64) -> usize {
            (self.next() % n) as usize
        }
    }

    /// A random NTA: mixed leaf/unary/binary transitions over a 2-letter
    /// alphabet, some states intentionally dead or unreachable.
    fn random_nta(seed: u64) -> Nta<char> {
        let mut rng = Rng(seed);
        let num_states = 2 + rng.below(14);
        let n_trans = 1 + rng.below(4 * num_states as u64);
        let mut transitions = Vec::with_capacity(n_trans);
        for _ in 0..n_trans {
            let arity = rng.below(3);
            transitions.push(NtaTransition {
                state: rng.below(num_states as u64),
                label: if rng.below(2) == 0 { 'a' } else { 'b' },
                children: (0..arity).map(|_| rng.below(num_states as u64)).collect(),
            });
        }
        let n_roots = 1 + rng.below(2);
        Nta {
            num_states,
            roots: (0..n_roots).map(|_| rng.below(num_states as u64)).collect(),
            transitions,
        }
    }

    /// The parallel fixpoints must agree with the sequential reference —
    /// same realizable/useful vectors (bit-identical), same verdicts — at
    /// every thread count, on a randomized automaton population.
    #[test]
    fn parallel_fixpoints_match_sequential_reference() {
        let budget = Budget::unlimited();
        for seed in 0..200u64 {
            let aut = random_nta(seed);
            let real_ref = aut.realizable();
            let useful_ref = aut.useful();
            let (empty_ref, inf_ref) = (aut.is_empty(), aut.is_infinite());
            for threads in [0usize, 2, 4, 8] {
                assert_eq!(
                    aut.realizable_with(threads, &budget),
                    Some(real_ref.clone()),
                    "realizable diverged (seed {seed}, threads {threads})"
                );
                assert_eq!(
                    aut.useful_with(threads, &budget),
                    Some(useful_ref.clone()),
                    "useful diverged (seed {seed}, threads {threads})"
                );
                assert_eq!(
                    aut.is_empty_with(threads, &budget),
                    Some(empty_ref),
                    "emptiness diverged (seed {seed}, threads {threads})"
                );
                assert_eq!(
                    aut.is_infinite_with(threads, &budget),
                    Some(inf_ref),
                    "infinity diverged (seed {seed}, threads {threads})"
                );
            }
        }
    }

    /// An already-expired budget yields `None` (no verdict), never a wrong
    /// verdict.
    #[test]
    fn expired_budget_returns_no_verdict() {
        let aut = all_a();
        let expired = Budget::deadline_in(std::time::Duration::ZERO);
        assert_eq!(aut.realizable_with(2, &expired), None);
        assert_eq!(aut.is_empty_with(2, &expired), None);
        assert_eq!(aut.is_infinite_with(2, &expired), None);
    }

    /// A cycle unreachable from the root does not make the language
    /// infinite.
    #[test]
    fn unreachable_cycle_ignored() {
        let aut = Nta {
            num_states: 2,
            roots: vec![0],
            transitions: vec![
                NtaTransition {
                    state: 0,
                    label: 'a',
                    children: vec![],
                },
                NtaTransition {
                    state: 1,
                    label: 'a',
                    children: vec![1],
                },
                NtaTransition {
                    state: 1,
                    label: 'a',
                    children: vec![],
                },
            ],
        };
        assert!(!aut.is_empty());
        assert!(!aut.is_infinite());
    }
}
