//! Nondeterministic top-down tree automata (NTA) on finite labeled trees
//! with bounded branching, with emptiness, membership, and the *infinity*
//! test used by the UCQ-rewritability decision (Prop. 31: "checking whether
//! L(A) is infinite is feasible in exponential time in the number of states
//! and polynomial time in the size of the alphabet").

use std::collections::HashSet;
use std::hash::Hash;

use crate::tree::LTree;

/// One transition: a node in state `state` with label `label` may have
/// exactly `children.len()` children, carrying the listed states in order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NtaTransition<L> {
    /// State of the node.
    pub state: usize,
    /// Required node label.
    pub label: L,
    /// States of the children (empty for leaves).
    pub children: Vec<usize>,
}

/// A nondeterministic tree automaton.
#[derive(Clone, Debug)]
pub struct Nta<L> {
    /// Number of states (`0..num_states`).
    pub num_states: usize,
    /// States allowed at the root.
    pub roots: Vec<usize>,
    /// The transition relation.
    pub transitions: Vec<NtaTransition<L>>,
}

impl<L: Eq + Hash + Clone> Nta<L> {
    /// Does the automaton accept the tree?
    pub fn accepts(&self, tree: &LTree<L>) -> bool {
        // Bottom-up: possible states per node.
        let n = tree.len();
        let mut poss: Vec<HashSet<usize>> = vec![HashSet::new(); n];
        // Process nodes in reverse creation order only works if children
        // have larger ids; LTree guarantees that (children are created after
        // parents).
        for node in (0..n).rev() {
            let kids = tree.children(node);
            for t in &self.transitions {
                if &t.label != tree.label(node) || t.children.len() != kids.len() {
                    continue;
                }
                if t.children
                    .iter()
                    .zip(kids)
                    .all(|(&q, &k)| poss[k].contains(&q))
                {
                    poss[node].insert(t.state);
                }
            }
        }
        self.roots.iter().any(|r| poss[0].contains(r))
    }

    /// The set of *realizable* states: those from which some finite tree can
    /// be derived (least fixpoint).
    fn realizable(&self) -> Vec<bool> {
        let mut real = vec![false; self.num_states];
        loop {
            let mut changed = false;
            for t in &self.transitions {
                if !real[t.state] && t.children.iter().all(|&c| real[c]) {
                    real[t.state] = true;
                    changed = true;
                }
            }
            if !changed {
                return real;
            }
        }
    }

    /// Is the language empty?
    pub fn is_empty(&self) -> bool {
        let real = self.realizable();
        !self.roots.iter().any(|&r| real[r])
    }

    /// The set of *useful* states: realizable and reachable from a
    /// realizable root through transitions whose siblings are realizable.
    fn useful(&self) -> Vec<bool> {
        let real = self.realizable();
        let mut useful = vec![false; self.num_states];
        let mut stack: Vec<usize> = self.roots.iter().copied().filter(|&r| real[r]).collect();
        for &r in &stack {
            useful[r] = true;
        }
        while let Some(q) = stack.pop() {
            for t in &self.transitions {
                if t.state != q || !t.children.iter().all(|&c| real[c]) {
                    continue;
                }
                for &c in &t.children {
                    if !useful[c] {
                        useful[c] = true;
                        stack.push(c);
                    }
                }
            }
        }
        useful
    }

    /// Is the language infinite?
    ///
    /// With a finite alphabet and bounded rank, `L(A)` is infinite iff some
    /// useful state lies on a cycle of the parent→child derivation graph
    /// restricted to useful states (pumping that cycle yields arbitrarily
    /// deep accepted trees; conversely unbounded depth forces a repeated
    /// state on a root-to-leaf path).
    pub fn is_infinite(&self) -> bool {
        if self.is_empty() {
            return false;
        }
        let real = self.realizable();
        let useful = self.useful();
        // Edge q -> c for transitions with all-realizable children.
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for t in &self.transitions {
            if useful[t.state] && t.children.iter().all(|&c| real[c]) {
                for &c in &t.children {
                    if useful[c] {
                        edges.push((t.state, c));
                    }
                }
            }
        }
        // Cycle detection among useful states.
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Gray,
            Black,
        }
        let mut mark = vec![Mark::White; self.num_states];
        fn dfs(q: usize, edges: &[(usize, usize)], mark: &mut [Mark]) -> bool {
            mark[q] = Mark::Gray;
            for &(a, b) in edges {
                if a == q {
                    match mark[b] {
                        Mark::Gray => return true,
                        Mark::White => {
                            if dfs(b, edges, mark) {
                                return true;
                            }
                        }
                        Mark::Black => {}
                    }
                }
            }
            mark[q] = Mark::Black;
            false
        }
        for q in 0..self.num_states {
            if useful[q] && mark[q] == Mark::White && dfs(q, &edges, &mut mark) {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Automaton accepting trees labeled 'a' everywhere, any shape up to
    /// binary branching.
    fn all_a() -> Nta<char> {
        Nta {
            num_states: 1,
            roots: vec![0],
            transitions: vec![
                NtaTransition {
                    state: 0,
                    label: 'a',
                    children: vec![],
                },
                NtaTransition {
                    state: 0,
                    label: 'a',
                    children: vec![0],
                },
                NtaTransition {
                    state: 0,
                    label: 'a',
                    children: vec![0, 0],
                },
            ],
        }
    }

    #[test]
    fn accepts_matching_tree() {
        let aut = all_a();
        let mut t = LTree::new('a');
        let c = t.add_child(0, 'a');
        t.add_child(c, 'a');
        t.add_child(0, 'a');
        assert!(aut.accepts(&t));
        let mut bad = LTree::new('a');
        bad.add_child(0, 'b');
        assert!(!aut.accepts(&bad));
    }

    #[test]
    fn emptiness_and_infinity() {
        let aut = all_a();
        assert!(!aut.is_empty());
        assert!(aut.is_infinite());
    }

    /// Accepts exactly one tree: a single 'b' leaf.
    #[test]
    fn finite_language() {
        let aut = Nta {
            num_states: 1,
            roots: vec![0],
            transitions: vec![NtaTransition {
                state: 0,
                label: 'b',
                children: vec![],
            }],
        };
        assert!(!aut.is_empty());
        assert!(!aut.is_infinite());
        assert!(aut.accepts(&LTree::new('b')));
        let mut two = LTree::new('b');
        two.add_child(0, 'b');
        assert!(!two.is_empty());
        assert!(!aut.accepts(&two));
    }

    /// A state that can only recurse forever is not realizable.
    #[test]
    fn unrealizable_state_means_empty() {
        let aut = Nta {
            num_states: 1,
            roots: vec![0],
            transitions: vec![NtaTransition {
                state: 0,
                label: 'a',
                children: vec![0],
            }],
        };
        assert!(aut.is_empty());
        assert!(!aut.is_infinite());
    }

    /// Chain of fixed length: finite language even with multiple states.
    #[test]
    fn bounded_depth_language_is_finite() {
        // root state 0 -> child 1 -> leaf; no cycles.
        let aut = Nta {
            num_states: 2,
            roots: vec![0],
            transitions: vec![
                NtaTransition {
                    state: 0,
                    label: 'a',
                    children: vec![1],
                },
                NtaTransition {
                    state: 1,
                    label: 'a',
                    children: vec![],
                },
            ],
        };
        assert!(!aut.is_empty());
        assert!(!aut.is_infinite());
    }

    /// A cycle unreachable from the root does not make the language
    /// infinite.
    #[test]
    fn unreachable_cycle_ignored() {
        let aut = Nta {
            num_states: 2,
            roots: vec![0],
            transitions: vec![
                NtaTransition {
                    state: 0,
                    label: 'a',
                    children: vec![],
                },
                NtaTransition {
                    state: 1,
                    label: 'a',
                    children: vec![1],
                },
                NtaTransition {
                    state: 1,
                    label: 'a',
                    children: vec![],
                },
            ],
        };
        assert!(!aut.is_empty());
        assert!(!aut.is_infinite());
    }
}
