//! Property test: formulas interned into a [`BfPool`] are semantically
//! identical to their tree-form [`Bf`] originals — same truth value under
//! every valuation, same set of minimal models — despite the pool's
//! flattening, idempotence, and absorption simplifications.

use proptest::prelude::*;

use omq_automata::{Bf, BfPool, EvalCache};

/// Number of distinct atoms the generated formulas range over (valuations
/// are enumerated exhaustively, so keep this small).
const ATOMS: u8 = 6;

/// A formula described as a postfix op stream: each item either pushes a
/// literal/constant or combines the top two stack entries.
#[derive(Debug, Clone)]
struct FormulaSpec {
    ops: Vec<(u8, u8)>,
}

fn formula_spec() -> impl Strategy<Value = FormulaSpec> {
    prop::collection::vec((0u8..4, 0u8..32), 1..24).prop_map(|ops| FormulaSpec { ops })
}

fn build(spec: &FormulaSpec) -> Bf<u8> {
    let mut stack: Vec<Bf<u8>> = Vec::new();
    for &(op, arg) in &spec.ops {
        match op {
            0 => stack.push(Bf::Lit(arg % ATOMS)),
            1 => stack.push(if arg % 2 == 0 { Bf::True } else { Bf::False }),
            2 | 3 => {
                let a = stack.pop().unwrap_or(Bf::Lit(arg % ATOMS));
                let b = stack.pop().unwrap_or(Bf::Lit(arg / ATOMS % ATOMS));
                stack.push(if op == 2 { a.and(b) } else { a.or(b) });
            }
            _ => unreachable!(),
        }
    }
    // Join any leftover stack entries so every op stream yields one formula.
    stack.into_iter().fold(Bf::False, Bf::or)
}

proptest! {
    /// Pool evaluation equals tree evaluation under every valuation.
    #[test]
    fn pooled_eval_equals_tree_eval(spec in formula_spec()) {
        let f = build(&spec);
        let mut pool: BfPool<u8> = BfPool::new();
        let id = pool.intern_bf(&f);
        let mut cache = EvalCache::new();
        for mask in 0u32..(1 << ATOMS) {
            let tree = f.eval(&mut |&a| mask & (1 << a) != 0);
            let pooled = cache.eval(&pool, id, &mut |&a| mask & (1 << a) != 0);
            prop_assert_eq!(tree, pooled);
        }
    }

    /// Pool minimal models equal tree minimal models as sets.
    #[test]
    fn pooled_minimal_models_equal_tree_models(spec in formula_spec()) {
        let f = build(&spec);
        let mut pool: BfPool<u8> = BfPool::new();
        let id = pool.intern_bf(&f);
        let mut pooled: Vec<Vec<u8>> = pool
            .minimal_models(id)
            .iter()
            .map(|m| {
                let mut vals: Vec<u8> = m.iter().map(|&li| *pool.lit_value(li)).collect();
                vals.sort_unstable();
                vals
            })
            .collect();
        pooled.sort();
        let mut tree = f.minimal_models();
        tree.sort();
        prop_assert_eq!(pooled, tree);
    }
}
