//! A small text syntax for tgds, queries, and facts.
//!
//! Conventions (Prolog-style):
//! * identifiers starting with an uppercase letter or `_` are **variables**;
//! * other identifiers (and numbers) are **constants**;
//! * predicates are whatever appears before `(`.
//!
//! Grammar, one statement per line (`#` and `%` start comments):
//!
//! ```text
//! R(X,Y), P(Y,Z) -> exists W . T(X,Y,W)     # a tgd (exists clause optional)
//! true -> P(a)                              # a fact tgd
//! q(X) :- R(X,Y), P(Y)                      # a CQ named q
//! q(X) :- T(X,X,Z)                          # a second disjunct => q is a UCQ
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::atom::Atom;
use crate::query::{Cq, Ucq};
use crate::symbols::{VarId, Vocabulary};
use crate::term::Term;
use crate::tgd::Tgd;

/// A parse error with a human-readable message and the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number (0 when parsing a standalone fragment).
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// The result of parsing a program: a vocabulary, the tgds in order of
/// appearance, and the named (U)CQs.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// The vocabulary interning every symbol of the program.
    pub voc: Vocabulary,
    /// The tgds, in source order.
    pub tgds: Vec<Tgd>,
    /// Named queries; several lines with the same name form a UCQ.
    pub queries: HashMap<String, Ucq>,
}

impl Program {
    /// The query named `name`, if present.
    pub fn query(&self, name: &str) -> Option<&Ucq> {
        self.queries.get(name)
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Arrow,     // ->
    ColonDash, // :-
}

fn tokenize(line: &str, lineno: usize) -> Result<Vec<Tok>, ParseError> {
    let mut toks = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '#' | '%' => break,
            c if c.is_whitespace() => i += 1,
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            '.' => {
                toks.push(Tok::Dot);
                i += 1;
            }
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'>' => {
                toks.push(Tok::Arrow);
                i += 2;
            }
            ':' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                toks.push(Tok::ColonDash);
                i += 2;
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let d = bytes[i] as char;
                    if d.is_alphanumeric() || d == '_' || d == '\'' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                toks.push(Tok::Ident(line[start..i].to_owned()));
            }
            other => {
                return Err(ParseError {
                    line: lineno,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(toks)
}

struct Cursor<'a> {
    toks: &'a [Tok],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: &Tok) -> Result<(), ParseError> {
        match self.next() {
            Some(got) if &got == t => Ok(()),
            got => Err(self.err(format!("expected {t:?}, found {got:?}"))),
        }
    }

    fn err(&self, message: String) -> ParseError {
        ParseError {
            line: self.line,
            message,
        }
    }

    fn done(&self) -> bool {
        self.pos >= self.toks.len()
    }
}

fn is_variable_name(name: &str) -> bool {
    name.starts_with(|c: char| c.is_uppercase() || c == '_')
}

fn parse_term(voc: &mut Vocabulary, name: &str) -> Term {
    if is_variable_name(name) {
        Term::Var(voc.var(name))
    } else {
        Term::Const(voc.constant(name))
    }
}

fn parse_atom(cur: &mut Cursor, voc: &mut Vocabulary) -> Result<Atom, ParseError> {
    let name = match cur.next() {
        Some(Tok::Ident(n)) => n.clone(),
        got => return Err(cur.err(format!("expected predicate, found {got:?}"))),
    };
    let mut args = Vec::new();
    if cur.peek() == Some(&Tok::LParen) {
        cur.next();
        if cur.peek() != Some(&Tok::RParen) {
            loop {
                match cur.next() {
                    Some(Tok::Ident(t)) => args.push(parse_term(voc, &t)),
                    got => return Err(cur.err(format!("expected term, found {got:?}"))),
                }
                match cur.peek() {
                    Some(Tok::Comma) => {
                        cur.next();
                    }
                    Some(Tok::RParen) => break,
                    got => return Err(cur.err(format!("expected , or ), found {got:?}"))),
                }
            }
        }
        cur.expect(&Tok::RParen)?;
    }
    let pred = if let Some(p) = voc.pred_id(&name) {
        if voc.arity(p) != args.len() {
            return Err(cur.err(format!(
                "predicate {name} used with arity {} but declared with arity {}",
                args.len(),
                voc.arity(p)
            )));
        }
        p
    } else {
        voc.pred(&name, args.len())
    };
    Ok(Atom::new(pred, args))
}

fn parse_atom_list(cur: &mut Cursor, voc: &mut Vocabulary) -> Result<Vec<Atom>, ParseError> {
    let mut atoms = vec![parse_atom(cur, voc)?];
    while cur.peek() == Some(&Tok::Comma) {
        cur.next();
        atoms.push(parse_atom(cur, voc)?);
    }
    Ok(atoms)
}

/// Parses a single tgd such as `R(X,Y) -> exists Z . T(X,Z)` or
/// `true -> P(a)`, interning symbols into `voc`.
pub fn parse_tgd(voc: &mut Vocabulary, line: &str) -> Result<Tgd, ParseError> {
    let toks = tokenize(line, 0)?;
    let mut cur = Cursor {
        toks: &toks,
        pos: 0,
        line: 0,
    };
    let tgd = parse_tgd_inner(&mut cur, voc)?;
    if !cur.done() {
        return Err(cur.err("trailing tokens after tgd".into()));
    }
    Ok(tgd)
}

fn parse_tgd_inner(cur: &mut Cursor, voc: &mut Vocabulary) -> Result<Tgd, ParseError> {
    // Body: either the keyword `true` (fact tgd) or an atom list.
    let body = if matches!(cur.peek(), Some(Tok::Ident(n)) if n == "true")
        && cur.toks.get(cur.pos + 1) == Some(&Tok::Arrow)
    {
        cur.next();
        Vec::new()
    } else {
        parse_atom_list(cur, voc)?
    };
    cur.expect(&Tok::Arrow)?;
    // Optional `exists V1, V2 .` prefix before the head.
    let mut declared_exists: Vec<VarId> = Vec::new();
    if matches!(cur.peek(), Some(Tok::Ident(n)) if n == "exists") {
        cur.next();
        loop {
            match cur.next() {
                Some(Tok::Ident(n)) if is_variable_name(&n) => {
                    declared_exists.push(voc.var(&n));
                }
                got => {
                    return Err(cur.err(format!("expected variable after exists, found {got:?}")))
                }
            }
            match cur.peek() {
                Some(Tok::Comma) => {
                    cur.next();
                }
                Some(Tok::Dot) => {
                    cur.next();
                    break;
                }
                got => {
                    return Err(cur.err(format!("expected , or . in exists clause, found {got:?}")))
                }
            }
        }
    }
    let head = parse_atom_list(cur, voc)?;
    let tgd = Tgd::new(body, head);
    // Validate the declared existentials against the implicit ones.
    let implicit = tgd.existential_vars();
    for v in &declared_exists {
        if !implicit.contains(v) {
            return Err(cur.err(format!(
                "variable {} declared existential but occurs in the body",
                voc.var_name(*v)
            )));
        }
    }
    Ok(tgd)
}

/// Parses a single query line such as `q(X) :- R(X,Y), P(Y)`, returning the
/// query name and the CQ.
pub fn parse_query(voc: &mut Vocabulary, line: &str) -> Result<(String, Cq), ParseError> {
    let toks = tokenize(line, 0)?;
    let mut cur = Cursor {
        toks: &toks,
        pos: 0,
        line: 0,
    };
    let out = parse_query_inner(&mut cur, voc)?;
    if !cur.done() {
        return Err(cur.err("trailing tokens after query".into()));
    }
    Ok(out)
}

fn parse_query_inner(cur: &mut Cursor, voc: &mut Vocabulary) -> Result<(String, Cq), ParseError> {
    let name = match cur.next() {
        Some(Tok::Ident(n)) => n.clone(),
        got => return Err(cur.err(format!("expected query name, found {got:?}"))),
    };
    let mut head = Vec::new();
    if cur.peek() == Some(&Tok::LParen) {
        cur.next();
        if cur.peek() != Some(&Tok::RParen) {
            loop {
                match cur.next() {
                    Some(Tok::Ident(n)) if is_variable_name(&n) => head.push(voc.var(&n)),
                    got => return Err(cur.err(format!("expected head variable, found {got:?}"))),
                }
                match cur.peek() {
                    Some(Tok::Comma) => {
                        cur.next();
                    }
                    Some(Tok::RParen) => break,
                    got => return Err(cur.err(format!("expected , or ), found {got:?}"))),
                }
            }
        }
        cur.expect(&Tok::RParen)?;
    }
    cur.expect(&Tok::ColonDash)?;
    let body = parse_atom_list(cur, voc)?;
    for &v in &head {
        if !body.iter().any(|a| a.mentions_var(v)) {
            return Err(cur.err(format!(
                "head variable {} does not occur in the body",
                voc.var_name(v)
            )));
        }
    }
    Ok((name, Cq::new(head, body)))
}

/// Parses a whole program: tgds and named queries, one per line.
pub fn parse_program(text: &str) -> Result<Program, ParseError> {
    let mut prog = Program::default();
    let mut order: Vec<String> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let toks = tokenize(raw, lineno)?;
        if toks.is_empty() {
            continue;
        }
        let is_query = toks.contains(&Tok::ColonDash);
        let mut cur = Cursor {
            toks: &toks,
            pos: 0,
            line: lineno,
        };
        if is_query {
            let (name, cq) = parse_query_inner(&mut cur, &mut prog.voc)?;
            if !cur.done() {
                return Err(cur.err("trailing tokens after query".into()));
            }
            match prog.queries.get_mut(&name) {
                Some(ucq) => {
                    if ucq.arity != cq.head.len() {
                        return Err(ParseError {
                            line: lineno,
                            message: format!("query {name} redeclared with different arity"),
                        });
                    }
                    ucq.disjuncts.push(cq);
                }
                None => {
                    order.push(name.clone());
                    prog.queries.insert(name, Ucq::from_cq(cq));
                }
            }
        } else {
            let tgd = parse_tgd_inner(&mut cur, &mut prog.voc)?;
            if !cur.done() {
                return Err(cur.err("trailing tokens after tgd".into()));
            }
            prog.tgds.push(tgd);
        }
    }
    Ok(prog)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_tgd() {
        let mut voc = Vocabulary::new();
        let t = parse_tgd(&mut voc, "R(X,Y), P(Y,Z) -> exists W . T(X,Y,W)").unwrap();
        assert_eq!(t.body.len(), 2);
        assert_eq!(t.head.len(), 1);
        assert_eq!(t.existential_vars().len(), 1);
        assert_eq!(voc.arity(voc.pred_id("T").unwrap()), 3);
    }

    #[test]
    fn parse_fact_tgd() {
        let mut voc = Vocabulary::new();
        let t = parse_tgd(&mut voc, "true -> Bit(0), Bit(1)").unwrap();
        assert!(t.is_fact_tgd());
        assert_eq!(t.head.len(), 2);
        assert_eq!(t.constants().len(), 2);
    }

    #[test]
    fn parse_tgd_without_exists_clause() {
        let mut voc = Vocabulary::new();
        let t = parse_tgd(&mut voc, "P(X) -> R(X,Y)").unwrap();
        assert_eq!(t.existential_vars().len(), 1); // Y implicit
    }

    #[test]
    fn reject_bad_exists() {
        let mut voc = Vocabulary::new();
        assert!(parse_tgd(&mut voc, "P(X) -> exists X . R(X,X)").is_err());
    }

    #[test]
    fn reject_arity_mismatch() {
        let mut voc = Vocabulary::new();
        parse_tgd(&mut voc, "P(X) -> R(X,X)").unwrap();
        assert!(parse_tgd(&mut voc, "R(X) -> P(X)").is_err());
    }

    #[test]
    fn parse_query_line() {
        let mut voc = Vocabulary::new();
        let (name, q) = parse_query(&mut voc, "q(X) :- R(X,Y), P(Y)").unwrap();
        assert_eq!(name, "q");
        assert_eq!(q.head.len(), 1);
        assert_eq!(q.body.len(), 2);
    }

    #[test]
    fn reject_unsafe_head() {
        let mut voc = Vocabulary::new();
        assert!(parse_query(&mut voc, "q(Z) :- R(X,Y)").is_err());
    }

    #[test]
    fn parse_whole_program_with_ucq() {
        let prog = parse_program(
            "# Example 1 from the paper\n\
             P(X) -> exists Y . R(X,Y)\n\
             R(X,Y) -> P(Y)\n\
             T(X) -> P(X)\n\
             \n\
             q(X) :- R(X,Y), P(Y)\n\
             q(X) :- T(X)\n",
        )
        .unwrap();
        assert_eq!(prog.tgds.len(), 3);
        let q = prog.query("q").unwrap();
        assert_eq!(q.disjuncts.len(), 2);
        assert_eq!(q.arity, 1);
    }

    #[test]
    fn constants_vs_variables() {
        let mut voc = Vocabulary::new();
        let (_, q) = parse_query(&mut voc, "q :- R(X, a), P(1)").unwrap();
        assert!(q.is_boolean());
        assert_eq!(q.constants().len(), 2);
        assert_eq!(q.vars().len(), 1);
    }

    #[test]
    fn nullary_atoms() {
        let mut voc = Vocabulary::new();
        let t = parse_tgd(&mut voc, "Existence, Tiling -> Goal").unwrap();
        assert_eq!(t.body.len(), 2);
        assert_eq!(t.body[0].arity(), 0);
    }

    #[test]
    fn query_arity_clash_rejected() {
        assert!(parse_program("q(X) :- P(X)\nq(X,Y) :- R(X,Y)\n").is_err());
    }
}
