//! Tuple-generating dependencies (tgds) and ontology-mediated queries (OMQs).

use crate::atom::{vars_of_atoms, Atom};
use crate::query::Ucq;
use crate::symbols::{ConstId, Schema, VarId};

/// A tuple-generating dependency `∀x̄∀ȳ (φ(x̄,ȳ) → ∃z̄ ψ(x̄,z̄))` (paper §2).
///
/// `body` is `φ`, `head` is `ψ`; quantification is implicit: variables shared
/// between body and head are universally quantified (the *frontier* `x̄`),
/// head-only variables are existentially quantified (`z̄`), and body-only
/// variables are the `ȳ`. A *fact tgd* has an empty body.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Tgd {
    /// The body `φ` (empty for fact tgds).
    pub body: Vec<Atom>,
    /// The head `ψ` (never empty).
    pub head: Vec<Atom>,
}

impl Tgd {
    /// Constructs a tgd.
    ///
    /// # Panics
    /// Panics if the head is empty.
    pub fn new(body: Vec<Atom>, head: Vec<Atom>) -> Self {
        assert!(!head.is_empty(), "a tgd must have a non-empty head");
        Tgd { body, head }
    }

    /// Is this a fact tgd (`⊤ → ∃z̄ ψ`)?
    pub fn is_fact_tgd(&self) -> bool {
        self.body.is_empty()
    }

    /// Variables occurring in the body, in first-occurrence order.
    pub fn body_vars(&self) -> Vec<VarId> {
        vars_of_atoms(&self.body)
    }

    /// Variables occurring in the head, in first-occurrence order.
    pub fn head_vars(&self) -> Vec<VarId> {
        vars_of_atoms(&self.head)
    }

    /// The frontier `x̄`: variables shared by body and head.
    pub fn frontier(&self) -> Vec<VarId> {
        let hv = self.head_vars();
        self.body_vars()
            .into_iter()
            .filter(|v| hv.contains(v))
            .collect()
    }

    /// The existentially quantified variables `z̄`: head-only variables.
    pub fn existential_vars(&self) -> Vec<VarId> {
        let bv = self.body_vars();
        self.head_vars()
            .into_iter()
            .filter(|v| !bv.contains(v))
            .collect()
    }

    /// Is the tgd *full* (no existential variables)? Full tgds are the
    /// Datalog fragment (class `F`, Prop. 8).
    pub fn is_full(&self) -> bool {
        self.existential_vars().is_empty()
    }

    /// Constants occurring in the tgd, deduplicated.
    pub fn constants(&self) -> Vec<ConstId> {
        let mut out = Vec::new();
        for a in self.body.iter().chain(&self.head) {
            for c in a.consts() {
                if !out.contains(&c) {
                    out.push(c);
                }
            }
        }
        out
    }

    /// Number of symbols `||τ||`: total argument positions plus atoms.
    pub fn size(&self) -> usize {
        self.body
            .iter()
            .chain(&self.head)
            .map(|a| 1 + a.arity())
            .sum()
    }
}

/// The schema `sch(Σ)`: every predicate occurring in the given tgds.
pub fn sch(sigma: &[Tgd]) -> Schema {
    let mut s = Schema::new();
    for t in sigma {
        for a in t.body.iter().chain(&t.head) {
            s.insert(a.pred);
        }
    }
    s
}

/// Total size `||Σ||` of a set of tgds.
pub fn sigma_size(sigma: &[Tgd]) -> usize {
    sigma.iter().map(Tgd::size).sum()
}

/// Constants occurring in a set of tgds (`C(Σ)`, Prop. 17), deduplicated.
pub fn sigma_constants(sigma: &[Tgd]) -> Vec<ConstId> {
    let mut out = Vec::new();
    for t in sigma {
        for c in t.constants() {
            if !out.contains(&c) {
                out.push(c);
            }
        }
    }
    out
}

/// An ontology-mediated query `Q = (S, Σ, q)` (paper §2).
///
/// `data_schema` is `S` — the schema over which input databases range; the
/// ontology `Σ` and the query `q` may mention further predicates from
/// `sch(Σ)`. Evaluation is under certain-answer semantics:
/// `Q(D) = cert(q, D, Σ) = q(chase(D, Σ))`.
#[derive(Clone, PartialEq, Debug)]
pub struct Omq {
    /// The data schema `S`.
    pub data_schema: Schema,
    /// The ontology `Σ`.
    pub sigma: Vec<Tgd>,
    /// The (U)CQ `q` over `S ∪ sch(Σ)`.
    pub query: Ucq,
}

impl Omq {
    /// Constructs an OMQ.
    pub fn new(data_schema: Schema, sigma: Vec<Tgd>, query: Ucq) -> Self {
        Omq {
            data_schema,
            sigma,
            query,
        }
    }

    /// The full schema `S ∪ sch(Σ)` (not including query-only predicates).
    pub fn full_schema(&self) -> Schema {
        self.data_schema.union(&sch(&self.sigma))
    }

    /// The answer arity of the OMQ.
    pub fn arity(&self) -> usize {
        self.query.arity
    }

    /// Is the query a single CQ?
    pub fn is_cq(&self) -> bool {
        self.query.disjuncts.len() == 1
    }

    /// Total size `||Q||`: ontology size plus query size.
    pub fn size(&self) -> usize {
        sigma_size(&self.sigma)
            + self
                .query
                .disjuncts
                .iter()
                .flat_map(|d| d.body.iter())
                .map(|a| 1 + a.arity())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Cq;
    use crate::symbols::Vocabulary;
    use crate::term::Term;

    fn example(voc: &mut Vocabulary) -> Tgd {
        // R(X,Y), P(Y,Z) -> exists W . T(X,Y,W)
        let r = voc.pred("R", 2);
        let p = voc.pred("P", 2);
        let t = voc.pred("T", 3);
        let (x, y, z, w) = (voc.var("X"), voc.var("Y"), voc.var("Z"), voc.var("W"));
        Tgd::new(
            vec![
                Atom::new(r, vec![Term::Var(x), Term::Var(y)]),
                Atom::new(p, vec![Term::Var(y), Term::Var(z)]),
            ],
            vec![Atom::new(t, vec![Term::Var(x), Term::Var(y), Term::Var(w)])],
        )
    }

    #[test]
    fn frontier_and_existentials() {
        let mut voc = Vocabulary::new();
        let t = example(&mut voc);
        let (x, y, z, w) = (voc.var("X"), voc.var("Y"), voc.var("Z"), voc.var("W"));
        assert_eq!(t.frontier(), vec![x, y]);
        assert_eq!(t.existential_vars(), vec![w]);
        assert!(t.body_vars().contains(&z));
        assert!(!t.is_full());
        assert!(!t.is_fact_tgd());
    }

    #[test]
    fn fact_and_full_tgds() {
        let mut voc = Vocabulary::new();
        let p = voc.pred("P", 1);
        let q = voc.pred("Q", 1);
        let x = voc.var("X");
        let c = voc.constant("a");
        let fact = Tgd::new(vec![], vec![Atom::new(p, vec![Term::Const(c)])]);
        assert!(fact.is_fact_tgd() && fact.is_full());
        let full = Tgd::new(
            vec![Atom::new(p, vec![Term::Var(x)])],
            vec![Atom::new(q, vec![Term::Var(x)])],
        );
        assert!(full.is_full() && !full.is_fact_tgd());
        assert_eq!(fact.constants(), vec![c]);
    }

    #[test]
    fn sch_collects_predicates() {
        let mut voc = Vocabulary::new();
        let t = example(&mut voc);
        let s = sch(std::slice::from_ref(&t));
        assert_eq!(s.len(), 3);
        assert_eq!(sigma_size(&[t]), (1 + 2) + (1 + 2) + (1 + 3));
    }

    #[test]
    fn omq_schema_union() {
        let mut voc = Vocabulary::new();
        let t = example(&mut voc);
        let r = voc.pred("R", 2);
        let p = voc.pred("P", 2);
        let x = voc.var("X");
        let q = Cq::new(
            vec![x],
            vec![Atom::new(r, vec![Term::Var(x), Term::Var(x)])],
        );
        let omq = Omq::new(Schema::from_preds([r, p]), vec![t], Ucq::from_cq(q));
        assert_eq!(omq.full_schema().len(), 3);
        assert_eq!(omq.arity(), 1);
        assert!(omq.is_cq());
        assert!(omq.size() > 0);
    }
}
