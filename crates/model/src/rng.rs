//! A tiny deterministic pseudo-random generator for workload generation and
//! randomized (differential) tests.
//!
//! The workspace builds in offline sandboxes without crates-io access, so
//! benchmark databases and fuzz-style tests cannot use the `rand` crate.
//! SplitMix64 is more than adequate for both jobs: the sequences only need
//! to be well-mixed and reproducible across platforms and runs.

/// A SplitMix64 generator: 64 bits of state, one multiply-xor-shift chain
/// per draw. Identical seeds yield identical sequences on every platform.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is an empty range");
        (self.next_u64() % n as u64) as usize
    }

    /// A uniform value in `range` (half-open).
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        range.start + self.below(range.end - range.start)
    }

    /// A coin flip that is `true` with probability `num / den`.
    pub fn chance(&mut self, num: usize, den: usize) -> bool {
        self.below(den) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = SplitMix64::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = rng.range(2..7);
            assert!((2..7).contains(&v));
            seen[v - 2] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut rng = SplitMix64::seed_from_u64(11);
        let hits = (0..1000).filter(|_| rng.chance(1, 4)).count();
        assert!((150..350).contains(&hits), "~250 expected, got {hits}");
    }
}
