//! Human-readable rendering of atoms, queries, tgds, and instances.
//!
//! All rendering needs a [`Vocabulary`] to resolve names, so the API is
//! function-based (`render_*`) rather than `Display` impls.

use std::fmt::Write;

use crate::atom::Atom;
use crate::instance::Instance;
use crate::query::{Cq, Ucq};
use crate::symbols::Vocabulary;
use crate::term::Term;
use crate::tgd::Tgd;

/// Renders a term.
pub fn render_term(voc: &Vocabulary, t: Term) -> String {
    match t {
        Term::Const(c) => voc.const_name(c).to_owned(),
        Term::Var(v) => voc.var_name(v).to_owned(),
        Term::Null(n) => format!("⊥{}", n.0),
    }
}

/// Renders an atom, e.g. `R(X,a)`.
pub fn render_atom(voc: &Vocabulary, a: &Atom) -> String {
    let mut s = voc.pred_name(a.pred).to_owned();
    if !a.args.is_empty() {
        s.push('(');
        for (i, &t) in a.args.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&render_term(voc, t));
        }
        s.push(')');
    }
    s
}

fn render_atom_list(voc: &Vocabulary, atoms: &[Atom]) -> String {
    atoms
        .iter()
        .map(|a| render_atom(voc, a))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Renders a tgd in the parser's syntax.
pub fn render_tgd(voc: &Vocabulary, t: &Tgd) -> String {
    let body = if t.body.is_empty() {
        "true".to_owned()
    } else {
        render_atom_list(voc, &t.body)
    };
    let ex = t.existential_vars();
    let mut s = format!("{body} -> ");
    if !ex.is_empty() {
        let names: Vec<&str> = ex.iter().map(|&v| voc.var_name(v)).collect();
        let _ = write!(s, "exists {} . ", names.join(", "));
    }
    s.push_str(&render_atom_list(voc, &t.head));
    s
}

/// Renders a CQ in the parser's syntax, with the given query name.
pub fn render_cq(voc: &Vocabulary, name: &str, q: &Cq) -> String {
    let mut s = name.to_owned();
    if !q.head.is_empty() {
        let names: Vec<&str> = q.head.iter().map(|&v| voc.var_name(v)).collect();
        let _ = write!(s, "({})", names.join(","));
    }
    let _ = write!(s, " :- {}", render_atom_list(voc, &q.body));
    s
}

/// Renders a UCQ as one line per disjunct.
pub fn render_ucq(voc: &Vocabulary, name: &str, u: &Ucq) -> String {
    u.disjuncts
        .iter()
        .map(|d| render_cq(voc, name, d))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Renders an instance as a sorted list of atoms, one per line.
pub fn render_instance(voc: &Vocabulary, i: &Instance) -> String {
    let mut lines: Vec<String> = i.atoms().iter().map(|a| render_atom(voc, a)).collect();
    lines.sort();
    lines.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_query, parse_tgd};

    #[test]
    fn tgd_roundtrip() {
        let mut voc = Vocabulary::new();
        let t = parse_tgd(&mut voc, "R(X,Y), P(Y,Z) -> exists W . T(X,Y,W)").unwrap();
        let s = render_tgd(&voc, &t);
        let t2 = parse_tgd(&mut voc, &s).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn fact_tgd_roundtrip() {
        let mut voc = Vocabulary::new();
        let t = parse_tgd(&mut voc, "true -> P(a)").unwrap();
        let s = render_tgd(&voc, &t);
        assert!(s.starts_with("true ->"));
        assert_eq!(parse_tgd(&mut voc, &s).unwrap(), t);
    }

    #[test]
    fn cq_roundtrip() {
        let mut voc = Vocabulary::new();
        let (_, q) = parse_query(&mut voc, "q(X) :- R(X,Y), P(Y)").unwrap();
        let s = render_cq(&voc, "q", &q);
        let (_, q2) = parse_query(&mut voc, &s).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn render_instance_sorted() {
        let mut voc = Vocabulary::new();
        let p = voc.pred("P", 1);
        let (a, b) = (voc.constant("a"), voc.constant("b"));
        let i = Instance::from_atoms([
            Atom::new(p, vec![Term::Const(b)]),
            Atom::new(p, vec![Term::Const(a)]),
        ]);
        assert_eq!(render_instance(&voc, &i), "P(a)\nP(b)");
    }
}
