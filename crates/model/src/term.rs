//! Terms: constants, labeled nulls, and variables.

use crate::symbols::{ConstId, NullId, VarId};

/// A term is a constant, a labeled null, or a variable (paper §2).
///
/// Databases contain only [`Term::Const`]; instances produced by the chase
/// additionally contain [`Term::Null`]; queries and tgds contain
/// [`Term::Var`] and [`Term::Const`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Term {
    /// A constant from `C`.
    Const(ConstId),
    /// A labeled null from `N`.
    Null(NullId),
    /// A variable from `V`.
    Var(VarId),
}

impl Term {
    /// A dense, instance-independent integer code for this term: the id
    /// shifted left by two bits with a 2-bit variant tag. Codes are
    /// non-negative and injective across all three variants, so columnar
    /// indexes can compare terms as plain `i64`s (see
    /// [`crate::Instance::columns`]). [`Term::from_code`] inverts it.
    pub fn code(self) -> i64 {
        match self {
            Term::Const(c) => (c.0 as i64) << 2,
            Term::Null(n) => ((n.0 as i64) << 2) | 1,
            Term::Var(v) => ((v.0 as i64) << 2) | 2,
        }
    }

    /// Inverse of [`Term::code`].
    ///
    /// # Panics
    /// Panics on a code no term produces (negative, or tag 3).
    pub fn from_code(code: i64) -> Term {
        let id = (code >> 2) as u32;
        match code & 3 {
            0 => Term::Const(ConstId(id)),
            1 => Term::Null(NullId(id)),
            2 => Term::Var(VarId(id)),
            _ => panic!("invalid term code {code}"),
        }
    }

    /// Is this a constant?
    pub fn is_const(self) -> bool {
        matches!(self, Term::Const(_))
    }

    /// Is this a labeled null?
    pub fn is_null(self) -> bool {
        matches!(self, Term::Null(_))
    }

    /// Is this a variable?
    pub fn is_var(self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// The variable inside, if any.
    pub fn as_var(self) -> Option<VarId> {
        match self {
            Term::Var(v) => Some(v),
            _ => None,
        }
    }

    /// The constant inside, if any.
    pub fn as_const(self) -> Option<ConstId> {
        match self {
            Term::Const(c) => Some(c),
            _ => None,
        }
    }

    /// The null inside, if any.
    pub fn as_null(self) -> Option<NullId> {
        match self {
            Term::Null(n) => Some(n),
            _ => None,
        }
    }
}

impl From<ConstId> for Term {
    fn from(c: ConstId) -> Self {
        Term::Const(c)
    }
}
impl From<VarId> for Term {
    fn from(v: VarId) -> Self {
        Term::Var(v)
    }
}
impl From<NullId> for Term {
    fn from(n: NullId) -> Self {
        Term::Null(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        let c = Term::Const(ConstId(0));
        let n = Term::Null(NullId(1));
        let v = Term::Var(VarId(2));
        assert!(c.is_const() && !c.is_null() && !c.is_var());
        assert!(n.is_null() && !n.is_const());
        assert!(v.is_var());
        assert_eq!(v.as_var(), Some(VarId(2)));
        assert_eq!(c.as_const(), Some(ConstId(0)));
        assert_eq!(n.as_null(), Some(NullId(1)));
        assert_eq!(c.as_var(), None);
    }
}
