//! Interned symbols: predicates, constants, variables, and the vocabulary
//! that owns their names.
//!
//! All algorithmic code works with lightweight copyable ids; names exist only
//! for parsing and display. A [`Vocabulary`] is shared by every object that
//! takes part in one reasoning task (ontology, queries, databases), which is
//! what the paper implicitly assumes when it speaks of "the schema
//! `S ∪ sch(Σ)`".

use std::collections::HashMap;
use std::fmt;

/// Identifier of a relation symbol (predicate).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct PredId(pub u32);

/// Identifier of a constant from the countably infinite set `C`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ConstId(pub u32);

/// Identifier of a (regular) variable from `V`, used in queries and tgds.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VarId(pub u32);

/// Identifier of a labeled null from `N`, invented by the chase.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NullId(pub u32);

impl fmt::Display for PredId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}
impl fmt::Display for ConstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}
impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "X{}", self.0)
    }
}
impl fmt::Display for NullId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⊥{}", self.0)
    }
}

/// A schema: a finite set of predicates, each with an arity.
///
/// In an OMQ `(S, Σ, q)` the *data schema* `S` is the sub-schema over which
/// input databases range; `Σ` and `q` may mention additional predicates.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schema {
    preds: Vec<PredId>,
}

impl Schema {
    /// The empty schema.
    pub fn new() -> Self {
        Schema { preds: Vec::new() }
    }

    /// A schema over the given predicates (deduplicated, order preserved).
    pub fn from_preds(preds: impl IntoIterator<Item = PredId>) -> Self {
        let mut s = Schema::new();
        for p in preds {
            s.insert(p);
        }
        s
    }

    /// Adds a predicate; returns `true` if it was not already present.
    pub fn insert(&mut self, p: PredId) -> bool {
        if self.preds.contains(&p) {
            false
        } else {
            self.preds.push(p);
            true
        }
    }

    /// Does the schema contain `p`?
    pub fn contains(&self, p: PredId) -> bool {
        self.preds.contains(&p)
    }

    /// The predicates of the schema, in insertion order.
    pub fn preds(&self) -> &[PredId] {
        &self.preds
    }

    /// Number of predicates.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Is the schema empty?
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Union of two schemas.
    pub fn union(&self, other: &Schema) -> Schema {
        let mut s = self.clone();
        for &p in other.preds() {
            s.insert(p);
        }
        s
    }

    /// Maximum arity over the schema's predicates (`ar(S)` in the paper).
    pub fn max_arity(&self, voc: &Vocabulary) -> usize {
        self.preds.iter().map(|&p| voc.arity(p)).max().unwrap_or(0)
    }
}

impl FromIterator<PredId> for Schema {
    fn from_iter<T: IntoIterator<Item = PredId>>(iter: T) -> Self {
        Schema::from_preds(iter)
    }
}

#[derive(Clone, Debug, Default)]
struct Interner {
    names: Vec<String>,
    by_name: HashMap<String, u32>,
}

impl Interner {
    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&i) = self.by_name.get(name) {
            return i;
        }
        let i = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), i);
        i
    }

    fn fresh(&mut self, prefix: &str) -> u32 {
        let mut n = self.names.len();
        loop {
            let cand = format!("{prefix}{n}");
            if !self.by_name.contains_key(&cand) {
                return self.intern(&cand);
            }
            n += 1;
        }
    }

    fn get(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    fn name(&self, i: u32) -> &str {
        &self.names[i as usize]
    }

    fn len(&self) -> usize {
        self.names.len()
    }
}

/// The symbol table shared by all objects in one reasoning task.
///
/// Owns the names and arities of predicates and the names of constants and
/// variables. Nulls are anonymous — they are only ever invented by the chase
/// and carry no name beyond their id.
#[derive(Clone, Debug, Default)]
pub struct Vocabulary {
    preds: Interner,
    arities: Vec<usize>,
    consts: Interner,
    vars: Interner,
    next_null: u32,
}

impl Vocabulary {
    /// An empty vocabulary.
    pub fn new() -> Self {
        Vocabulary::default()
    }

    /// Interns a predicate with the given arity.
    ///
    /// # Panics
    /// Panics if the predicate was already interned with a different arity;
    /// arity mismatches are always programming errors in this library.
    pub fn pred(&mut self, name: &str, arity: usize) -> PredId {
        let i = self.preds.intern(name);
        if (i as usize) == self.arities.len() {
            self.arities.push(arity);
        } else {
            assert_eq!(
                self.arities[i as usize], arity,
                "predicate {name} re-interned with different arity"
            );
        }
        PredId(i)
    }

    /// A fresh predicate whose name starts with `prefix`.
    pub fn fresh_pred(&mut self, prefix: &str, arity: usize) -> PredId {
        let i = self.preds.fresh(prefix);
        debug_assert_eq!(i as usize, self.arities.len());
        self.arities.push(arity);
        PredId(i)
    }

    /// Looks up a predicate by name.
    pub fn pred_id(&self, name: &str) -> Option<PredId> {
        self.preds.get(name).map(PredId)
    }

    /// The arity of `p`.
    pub fn arity(&self, p: PredId) -> usize {
        self.arities[p.0 as usize]
    }

    /// The name of `p`.
    pub fn pred_name(&self, p: PredId) -> &str {
        self.preds.name(p.0)
    }

    /// All interned predicates.
    pub fn all_preds(&self) -> impl Iterator<Item = PredId> + '_ {
        (0..self.preds.len() as u32).map(PredId)
    }

    /// Number of interned predicates.
    pub fn num_preds(&self) -> usize {
        self.preds.len()
    }

    /// Interns a constant.
    pub fn constant(&mut self, name: &str) -> ConstId {
        ConstId(self.consts.intern(name))
    }

    /// A fresh constant whose name starts with `prefix`.
    pub fn fresh_const(&mut self, prefix: &str) -> ConstId {
        ConstId(self.consts.fresh(prefix))
    }

    /// Looks up a constant by name.
    pub fn const_id(&self, name: &str) -> Option<ConstId> {
        self.consts.get(name).map(ConstId)
    }

    /// The name of constant `c`.
    pub fn const_name(&self, c: ConstId) -> &str {
        self.consts.name(c.0)
    }

    /// Number of interned constants.
    pub fn num_consts(&self) -> usize {
        self.consts.len()
    }

    /// Interns a variable.
    pub fn var(&mut self, name: &str) -> VarId {
        VarId(self.vars.intern(name))
    }

    /// A fresh variable whose name starts with `prefix`.
    pub fn fresh_var(&mut self, prefix: &str) -> VarId {
        VarId(self.vars.fresh(prefix))
    }

    /// Looks up a variable by name.
    pub fn var_id(&self, name: &str) -> Option<VarId> {
        self.vars.get(name).map(VarId)
    }

    /// The name of variable `v`.
    pub fn var_name(&self, v: VarId) -> &str {
        self.vars.name(v.0)
    }

    /// Number of interned variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// A fresh labeled null (used by the chase).
    pub fn fresh_null(&mut self) -> NullId {
        let n = NullId(self.next_null);
        self.next_null += 1;
        n
    }

    /// Number of nulls invented so far.
    pub fn num_nulls(&self) -> usize {
        self.next_null as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_roundtrip() {
        let mut v = Vocabulary::new();
        let r = v.pred("R", 2);
        let p = v.pred("P", 1);
        assert_eq!(v.pred("R", 2), r);
        assert_ne!(r, p);
        assert_eq!(v.arity(r), 2);
        assert_eq!(v.pred_name(p), "P");
        assert_eq!(v.pred_id("R"), Some(r));
        assert_eq!(v.pred_id("Q"), None);
    }

    #[test]
    #[should_panic(expected = "different arity")]
    fn arity_mismatch_panics() {
        let mut v = Vocabulary::new();
        v.pred("R", 2);
        v.pred("R", 3);
    }

    #[test]
    fn fresh_symbols_are_distinct() {
        let mut v = Vocabulary::new();
        let a = v.fresh_var("u");
        let b = v.fresh_var("u");
        assert_ne!(a, b);
        let c = v.fresh_const("k");
        let d = v.fresh_const("k");
        assert_ne!(c, d);
        let n1 = v.fresh_null();
        let n2 = v.fresh_null();
        assert_ne!(n1, n2);
    }

    #[test]
    fn fresh_pred_avoids_collision() {
        let mut v = Vocabulary::new();
        v.pred("aux0", 1);
        let q = v.fresh_pred("aux", 2);
        assert_ne!(v.pred_name(q), "aux0");
        assert_eq!(v.arity(q), 2);
    }

    #[test]
    fn schema_ops() {
        let mut v = Vocabulary::new();
        let r = v.pred("R", 2);
        let p = v.pred("P", 1);
        let t = v.pred("T", 3);
        let mut s = Schema::new();
        assert!(s.insert(r));
        assert!(!s.insert(r));
        assert!(s.insert(p));
        assert!(s.contains(r));
        assert!(!s.contains(t));
        assert_eq!(s.len(), 2);
        assert_eq!(s.max_arity(&v), 2);
        let s2 = Schema::from_preds([t]);
        let u = s.union(&s2);
        assert_eq!(u.len(), 3);
        assert_eq!(u.max_arity(&v), 3);
    }
}
