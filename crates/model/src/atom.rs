//! Atoms: a predicate applied to a tuple of terms.

use crate::symbols::{ConstId, NullId, PredId, VarId};
use crate::term::Term;

/// An atom `R(t₁, …, tₙ)`.
///
/// A *fact* is an atom whose arguments are all constants; atoms in instances
/// may also contain nulls; atoms in queries and tgds contain variables and
/// constants.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Atom {
    /// The relation symbol.
    pub pred: PredId,
    /// The argument tuple.
    pub args: Vec<Term>,
}

impl Atom {
    /// Constructs an atom.
    pub fn new(pred: PredId, args: Vec<Term>) -> Self {
        Atom { pred, args }
    }

    /// The arity of this atom (length of its argument tuple).
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// Is every argument a constant (i.e. is this a fact)?
    pub fn is_fact(&self) -> bool {
        self.args.iter().all(|t| t.is_const())
    }

    /// Is the atom ground (no variables; nulls allowed)?
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(|t| !t.is_var())
    }

    /// Iterates over the variables occurring in the atom (with repeats).
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.args.iter().filter_map(|t| t.as_var())
    }

    /// Iterates over the constants occurring in the atom (with repeats).
    pub fn consts(&self) -> impl Iterator<Item = ConstId> + '_ {
        self.args.iter().filter_map(|t| t.as_const())
    }

    /// Iterates over the nulls occurring in the atom (with repeats).
    pub fn nulls(&self) -> impl Iterator<Item = NullId> + '_ {
        self.args.iter().filter_map(|t| t.as_null())
    }

    /// Does the atom mention variable `v`?
    pub fn mentions_var(&self, v: VarId) -> bool {
        self.args.contains(&Term::Var(v))
    }

    /// The positions (0-based) at which `t` occurs — `pos(α, x)` in the
    /// paper's definition of stickiness.
    pub fn positions_of(&self, t: Term) -> Vec<usize> {
        self.args
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| (a == t).then_some(i))
            .collect()
    }

    /// Applies `f` to every argument, producing a new atom.
    pub fn map_terms(&self, mut f: impl FnMut(Term) -> Term) -> Atom {
        Atom {
            pred: self.pred,
            args: self.args.iter().map(|&t| f(t)).collect(),
        }
    }
}

/// Collects the set of distinct variables mentioned by a slice of atoms, in
/// first-occurrence order.
pub fn vars_of_atoms(atoms: &[Atom]) -> Vec<VarId> {
    let mut seen = Vec::new();
    for a in atoms {
        for v in a.vars() {
            if !seen.contains(&v) {
                seen.push(v);
            }
        }
    }
    seen
}

/// Collects the set of distinct terms mentioned by a slice of atoms, in
/// first-occurrence order (the *active domain* when the atoms are ground).
pub fn terms_of_atoms(atoms: &[Atom]) -> Vec<Term> {
    let mut seen = Vec::new();
    for a in atoms {
        for &t in &a.args {
            if !seen.contains(&t) {
                seen.push(t);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::Vocabulary;

    fn setup() -> (Vocabulary, Atom) {
        let mut v = Vocabulary::new();
        let r = v.pred("R", 3);
        let x = v.var("X");
        let c = v.constant("a");
        let atom = Atom::new(r, vec![Term::Var(x), Term::Const(c), Term::Var(x)]);
        (v, atom)
    }

    #[test]
    fn basic_accessors() {
        let (mut v, atom) = setup();
        assert_eq!(atom.arity(), 3);
        assert!(!atom.is_fact());
        assert!(!atom.is_ground());
        assert_eq!(atom.vars().count(), 2);
        assert_eq!(atom.consts().count(), 1);
        let x = v.var("X");
        assert!(atom.mentions_var(x));
        assert_eq!(atom.positions_of(Term::Var(x)), vec![0, 2]);
    }

    #[test]
    fn map_terms_replaces() {
        let (mut v, atom) = setup();
        let x = v.var("X");
        let b = v.constant("b");
        let g = atom.map_terms(|t| if t == Term::Var(x) { Term::Const(b) } else { t });
        assert!(g.is_fact());
        assert_eq!(g.args[0], Term::Const(b));
        assert_eq!(g.args[2], Term::Const(b));
    }

    #[test]
    fn vars_and_terms_of_atoms() {
        let (mut v, atom) = setup();
        let p = v.pred("P", 1);
        let y = v.var("Y");
        let atoms = vec![atom, Atom::new(p, vec![Term::Var(y)])];
        let vars = vars_of_atoms(&atoms);
        assert_eq!(vars.len(), 2);
        let terms = terms_of_atoms(&atoms);
        assert_eq!(terms.len(), 3); // X, a, Y
    }
}
