//! Conjunctive queries (CQs) and unions of conjunctive queries (UCQs).

use std::collections::{HashMap, HashSet};

use crate::atom::{vars_of_atoms, Atom};
use crate::instance::Instance;
use crate::symbols::{ConstId, Schema, VarId, Vocabulary};
use crate::term::Term;

/// A conjunctive query `q(x̄) := ∃ȳ (R₁(v̄₁) ∧ … ∧ Rₘ(v̄ₘ))`.
///
/// `head` lists the free (answer) variables `x̄`; every other variable in
/// `body` is implicitly existentially quantified. A Boolean CQ has an empty
/// head. Atoms may contain constants but never nulls.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Cq {
    /// The free variables `x̄` (possibly with repeats, as in `q(x, x)`).
    pub head: Vec<VarId>,
    /// The body atoms.
    pub body: Vec<Atom>,
}

impl Cq {
    /// Constructs a CQ.
    ///
    /// # Panics
    /// Panics (debug) if a head variable does not occur in the body or if a
    /// body atom contains a null.
    pub fn new(head: Vec<VarId>, body: Vec<Atom>) -> Self {
        debug_assert!(
            head.iter().all(|&v| body.iter().any(|a| a.mentions_var(v))),
            "every head variable must occur in the body"
        );
        debug_assert!(
            body.iter().all(|a| a.nulls().next().is_none()),
            "CQ bodies contain no nulls"
        );
        Cq { head, body }
    }

    /// A Boolean CQ with the given body.
    pub fn boolean(body: Vec<Atom>) -> Self {
        Cq::new(Vec::new(), body)
    }

    /// Is this a Boolean CQ?
    pub fn is_boolean(&self) -> bool {
        self.head.is_empty()
    }

    /// Number of body atoms (`|q|` in the paper).
    pub fn num_atoms(&self) -> usize {
        self.body.len()
    }

    /// All variables of the query, in first-occurrence order over the body.
    pub fn vars(&self) -> Vec<VarId> {
        vars_of_atoms(&self.body)
    }

    /// The existential variables: body variables not in the head.
    pub fn existential_vars(&self) -> Vec<VarId> {
        self.vars()
            .into_iter()
            .filter(|v| !self.head.contains(v))
            .collect()
    }

    /// Constants occurring in the body (`C(q)`), deduplicated.
    pub fn constants(&self) -> Vec<ConstId> {
        let mut seen = Vec::new();
        for a in &self.body {
            for c in a.consts() {
                if !seen.contains(&c) {
                    seen.push(c);
                }
            }
        }
        seen
    }

    /// The distinct terms of the query (`T(q)` in Prop. 17): variables and
    /// constants.
    pub fn terms(&self) -> Vec<Term> {
        crate::atom::terms_of_atoms(&self.body)
    }

    /// Is `v` *shared* in the query (free, or occurring more than once)?
    /// This is the notion used by XRewrite's applicability condition.
    pub fn is_shared(&self, v: VarId) -> bool {
        if self.head.contains(&v) {
            return true;
        }
        let mut count = 0usize;
        for a in &self.body {
            count += a.vars().filter(|&w| w == v).count();
            if count > 1 {
                return true;
            }
        }
        false
    }

    /// Variables occurring in **more than one atom** (`var≥2(q)` in §6.2).
    pub fn vars_in_multiple_atoms(&self) -> Vec<VarId> {
        self.vars()
            .into_iter()
            .filter(|&v| self.body.iter().filter(|a| a.mentions_var(v)).count() >= 2)
            .collect()
    }

    /// The set of predicates mentioned by the query.
    pub fn schema(&self) -> Schema {
        Schema::from_preds(self.body.iter().map(|a| a.pred))
    }

    /// Splits the query body into connected components (`co(q)`, §7.1).
    ///
    /// Each component keeps the head variables that occur in it. Following
    /// the paper, 0-ary atoms are excluded from the connectivity relation and
    /// grouped into their own singleton components.
    pub fn components(&self) -> Vec<Cq> {
        let inst = Instance::from_atoms(self.body.iter().map(|a| {
            // Temporarily treat variables as nulls so `Instance` accepts them.
            a.map_terms(|t| match t {
                Term::Var(v) => Term::Null(crate::symbols::NullId(v.0)),
                other => other,
            })
        }));
        let comps = inst.components();
        let mut out: Vec<Cq> = comps
            .into_iter()
            .map(|c| {
                let body: Vec<Atom> = c
                    .atoms()
                    .iter()
                    .map(|a| {
                        a.map_terms(|t| match t {
                            Term::Null(n) => Term::Var(VarId(n.0)),
                            other => other,
                        })
                    })
                    .collect();
                let head = self
                    .head
                    .iter()
                    .copied()
                    .filter(|&v| body.iter().any(|a| a.mentions_var(v)))
                    .collect();
                Cq::new(head, body)
            })
            .collect();
        for a in &self.body {
            if a.arity() == 0 {
                out.push(Cq::boolean(vec![a.clone()]));
            }
        }
        out
    }

    /// Is the query connected (single component)?
    pub fn is_connected(&self) -> bool {
        self.components().len() <= 1
    }

    /// Applies a term mapping to the body (head variables must be mapped to
    /// variables; use [`Cq::substitute`] via a [`crate::subst::Substitution`]
    /// for the checked variant used by the rewriting engine).
    pub fn map_terms(&self, mut f: impl FnMut(Term) -> Term) -> Cq {
        let body = self.body.iter().map(|a| a.map_terms(&mut f)).collect();
        let head = self
            .head
            .iter()
            .map(|&v| match f(Term::Var(v)) {
                Term::Var(w) => w,
                _ => panic!("head variable mapped to a non-variable"),
            })
            .collect();
        Cq { head, body }
    }

    /// Freezes the query into a canonical database: each variable becomes a
    /// fresh constant. Returns the database and the image `c(x̄)` of the head.
    ///
    /// This is the construction `D_{q}` used in the proof of Prop. 10 and
    /// throughout the small-witness containment algorithm.
    pub fn freeze(&self, voc: &mut Vocabulary) -> (Instance, Vec<ConstId>) {
        let mut map: HashMap<VarId, ConstId> = HashMap::new();
        let mut db = Instance::new();
        for a in &self.body {
            let ga = a.map_terms(|t| match t {
                Term::Var(v) => {
                    let c = *map.entry(v).or_insert_with(|| voc.fresh_const("f"));
                    Term::Const(c)
                }
                other => other,
            });
            db.insert(ga);
        }
        let head = self
            .head
            .iter()
            .map(|v| *map.entry(*v).or_insert_with(|| voc.fresh_const("f")))
            .collect();
        (db, head)
    }
}

/// A union of conjunctive queries `q(x̄) := q₁(x̄) ∨ … ∨ qₙ(x̄)`.
///
/// All disjuncts share the head arity. The empty UCQ (no disjuncts) is the
/// unsatisfiable query `⊥`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Ucq {
    /// Arity of the answer tuple.
    pub arity: usize,
    /// The disjuncts.
    pub disjuncts: Vec<Cq>,
}

impl Ucq {
    /// A UCQ from disjuncts.
    ///
    /// # Panics
    /// Panics if disjunct head arities disagree.
    pub fn new(arity: usize, disjuncts: Vec<Cq>) -> Self {
        assert!(
            disjuncts.iter().all(|d| d.head.len() == arity),
            "all disjuncts of a UCQ must share the head arity"
        );
        Ucq { arity, disjuncts }
    }

    /// Wraps a single CQ.
    pub fn from_cq(cq: Cq) -> Self {
        Ucq {
            arity: cq.head.len(),
            disjuncts: vec![cq],
        }
    }

    /// The single CQ, if this UCQ has exactly one disjunct.
    pub fn as_cq(&self) -> Option<&Cq> {
        match self.disjuncts.as_slice() {
            [d] => Some(d),
            _ => None,
        }
    }

    /// Is this the unsatisfiable empty union?
    pub fn is_empty(&self) -> bool {
        self.disjuncts.is_empty()
    }

    /// Is the UCQ Boolean?
    pub fn is_boolean(&self) -> bool {
        self.arity == 0
    }

    /// Predicates mentioned across all disjuncts.
    pub fn schema(&self) -> Schema {
        let mut s = Schema::new();
        for d in &self.disjuncts {
            s = s.union(&d.schema());
        }
        s
    }

    /// Maximum number of atoms over the disjuncts (the quantity bounded by
    /// the functions `f_O` of §4).
    pub fn max_disjunct_size(&self) -> usize {
        self.disjuncts.iter().map(Cq::num_atoms).max().unwrap_or(0)
    }

    /// The set of variables used anywhere in the UCQ.
    pub fn all_vars(&self) -> HashSet<VarId> {
        self.disjuncts.iter().flat_map(|d| d.vars()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::Vocabulary;

    fn q_rxy_py(v: &mut Vocabulary) -> Cq {
        let r = v.pred("R", 2);
        let p = v.pred("P", 1);
        let (x, y) = (v.var("X"), v.var("Y"));
        Cq::new(
            vec![x],
            vec![
                Atom::new(r, vec![Term::Var(x), Term::Var(y)]),
                Atom::new(p, vec![Term::Var(y)]),
            ],
        )
    }

    #[test]
    fn vars_and_sharing() {
        let mut v = Vocabulary::new();
        let q = q_rxy_py(&mut v);
        let (x, y) = (v.var("X"), v.var("Y"));
        assert_eq!(q.vars(), vec![x, y]);
        assert_eq!(q.existential_vars(), vec![y]);
        assert!(q.is_shared(x)); // free
        assert!(q.is_shared(y)); // occurs twice
        assert_eq!(q.vars_in_multiple_atoms(), vec![y]);
        assert!(!q.is_boolean());
    }

    #[test]
    fn non_shared_variable() {
        let mut v = Vocabulary::new();
        let r = v.pred("R", 2);
        let (x, y) = (v.var("X"), v.var("Y"));
        let q = Cq::new(
            vec![x],
            vec![Atom::new(r, vec![Term::Var(x), Term::Var(y)])],
        );
        assert!(!q.is_shared(y));
    }

    #[test]
    fn components_of_query() {
        let mut v = Vocabulary::new();
        let r = v.pred("R", 2);
        let p = v.pred("P", 1);
        let (x, y, z) = (v.var("X"), v.var("Y"), v.var("Z"));
        let q = Cq::new(
            vec![x, z],
            vec![
                Atom::new(r, vec![Term::Var(x), Term::Var(y)]),
                Atom::new(p, vec![Term::Var(z)]),
            ],
        );
        let comps = q.components();
        assert_eq!(comps.len(), 2);
        assert!(!q.is_connected());
        // Heads are projected per component.
        let heads: Vec<usize> = comps.iter().map(|c| c.head.len()).collect();
        assert_eq!(heads, vec![1, 1]);
    }

    #[test]
    fn freeze_produces_database() {
        let mut v = Vocabulary::new();
        let q = q_rxy_py(&mut v);
        let (db, head) = q.freeze(&mut v);
        assert!(db.is_database());
        assert_eq!(db.len(), 2);
        assert_eq!(head.len(), 1);
        // X and Y map to distinct constants.
        assert_eq!(db.active_domain().len(), 2);
    }

    #[test]
    fn ucq_invariants() {
        let mut v = Vocabulary::new();
        let q = q_rxy_py(&mut v);
        let u = Ucq::from_cq(q.clone());
        assert_eq!(u.arity, 1);
        assert_eq!(u.as_cq(), Some(&q));
        assert_eq!(u.max_disjunct_size(), 2);
        assert!(!u.is_empty());
        let empty = Ucq::new(0, vec![]);
        assert!(empty.is_empty() && empty.is_boolean());
    }
}
