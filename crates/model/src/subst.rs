//! Substitutions and most general unifiers (MGUs).
//!
//! A substitution maps variables to terms; unification here is over flat
//! terms (variables and constants — no function symbols), so an MGU either
//! exists and is computed by union-find, or fails on a constant clash.

use crate::atom::Atom;
use crate::query::Cq;
use crate::symbols::VarId;
use crate::term::Term;

/// A substitution: a finite map from variables to terms.
///
/// Application is *simultaneous* (not iterated), matching the convention for
/// MGUs in the XRewrite algorithm; compose substitutions explicitly with
/// [`Substitution::compose`] when sequencing is needed.
///
/// Stored as a small vector of bindings rather than a hash map: the
/// substitutions built here (MGUs, renamings) bind a handful of variables
/// but are *applied* once per term of every generated atom, and at that
/// size a linear scan is faster than hashing. Binding order is insertion
/// order; equality and hashing are insensitive to it.
#[derive(Clone, Debug, Default)]
pub struct Substitution {
    map: Vec<(VarId, Term)>,
}

impl PartialEq for Substitution {
    fn eq(&self, other: &Self) -> bool {
        // Keys are unique, so mutual size plus subset is equality.
        self.map.len() == other.map.len() && self.map.iter().all(|&(v, t)| other.get(v) == Some(t))
    }
}

impl Eq for Substitution {}

impl Substitution {
    /// The identity substitution.
    pub fn new() -> Self {
        Substitution::default()
    }

    /// Binds `v ↦ t`, replacing any previous binding.
    pub fn bind(&mut self, v: VarId, t: Term) {
        match self.map.iter_mut().find(|(w, _)| *w == v) {
            Some(slot) => slot.1 = t,
            None => self.map.push((v, t)),
        }
    }

    /// The image of `v`, if bound.
    pub fn get(&self, v: VarId) -> Option<Term> {
        self.map.iter().find(|&&(w, _)| w == v).map(|&(_, t)| t)
    }

    /// Applies the substitution to a term.
    pub fn apply_term(&self, t: Term) -> Term {
        match t {
            Term::Var(v) => self.get(v).unwrap_or(t),
            other => other,
        }
    }

    /// Applies the substitution to an atom.
    pub fn apply_atom(&self, a: &Atom) -> Atom {
        a.map_terms(|t| self.apply_term(t))
    }

    /// Applies the substitution to every atom of a slice.
    pub fn apply_atoms(&self, atoms: &[Atom]) -> Vec<Atom> {
        atoms.iter().map(|a| self.apply_atom(a)).collect()
    }

    /// Applies the substitution to a CQ.
    ///
    /// # Panics
    /// Panics if a head variable is mapped to a non-variable term; the
    /// rewriting engine guarantees this never happens for the MGUs it builds
    /// (free variables are never unified with constants thanks to the
    /// applicability condition).
    pub fn apply_cq(&self, q: &Cq) -> Cq {
        q.map_terms(|t| self.apply_term(t))
    }

    /// Sequential composition: `(self ∘ other)(x) = self(other(x))`.
    pub fn compose(&self, other: &Substitution) -> Substitution {
        let mut out = Substitution::new();
        for &(v, t) in &other.map {
            out.bind(v, self.apply_term(t));
        }
        for &(v, t) in &self.map {
            if out.get(v).is_none() {
                out.map.push((v, t));
            }
        }
        out
    }

    /// Iterates over the bindings (in insertion order).
    pub fn iter(&self) -> impl Iterator<Item = (VarId, Term)> + '_ {
        self.map.iter().copied()
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is this the identity?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl FromIterator<(VarId, Term)> for Substitution {
    fn from_iter<T: IntoIterator<Item = (VarId, Term)>>(iter: T) -> Self {
        let mut out = Substitution::new();
        for (v, t) in iter {
            out.bind(v, t);
        }
        out
    }
}

/// Union-find over terms used for unification, interned into a small dense
/// vector: one MGU problem touches a handful of distinct terms, so linear
/// scans beat hashing on both `intern` and `find`.
struct Uf {
    terms: Vec<Term>,
    parent: Vec<usize>,
}

impl Uf {
    fn new() -> Self {
        Uf {
            terms: Vec::new(),
            parent: Vec::new(),
        }
    }

    fn intern(&mut self, t: Term) -> usize {
        match self.terms.iter().position(|&u| u == t) {
            Some(i) => i,
            None => {
                self.terms.push(t);
                self.parent.push(self.terms.len() - 1);
                self.terms.len() - 1
            }
        }
    }

    fn find(&mut self, i: usize) -> usize {
        let p = self.parent[i];
        if p == i {
            return i;
        }
        let r = self.find(p);
        self.parent[i] = r;
        r
    }

    /// Unifies two terms. Constants become class representatives; two
    /// distinct constants clash. Returns `false` on clash.
    fn union(&mut self, a: Term, b: Term) -> bool {
        let (ia, ib) = (self.intern(a), self.intern(b));
        let (ra, rb) = (self.find(ia), self.find(ib));
        if ra == rb {
            return true;
        }
        match (self.terms[ra].is_var(), self.terms[rb].is_var()) {
            (true, _) => {
                self.parent[ra] = rb;
                true
            }
            (false, true) => {
                self.parent[rb] = ra;
                true
            }
            (false, false) => false, // two distinct non-variables
        }
    }
}

/// Computes the MGU of two atoms, if one exists.
///
/// Returns `None` when the predicates differ or a constant clash occurs.
pub fn mgu_atoms(a: &Atom, b: &Atom) -> Option<Substitution> {
    mgu_refs(&[a, b])
}

/// Computes the MGU of a set of atoms (all must become equal), if one exists.
///
/// This is the notion the paper uses for XRewrite: a unifier `γ` with
/// `γ(α₁) = … = γ(αₙ)`, most general among all such.
pub fn mgu_many(atoms: &[Atom]) -> Option<Substitution> {
    let refs: Vec<&Atom> = atoms.iter().collect();
    mgu_refs(&refs)
}

/// [`mgu_many`] over borrowed atoms: the rewriting engine unifies subsets of
/// a query body against a tgd head once per enumerated subset, and this
/// entry point lets it do so without cloning the atoms first.
pub fn mgu_refs(atoms: &[&Atom]) -> Option<Substitution> {
    let first = *atoms.first()?;
    let mut uf = Uf::new();
    for &a in &atoms[1..] {
        if a.pred != first.pred || a.arity() != first.arity() {
            return None;
        }
        for (x, y) in first.args.iter().zip(&a.args) {
            if !uf.union(*x, *y) {
                return None;
            }
        }
    }
    // Extract the substitution: every variable maps to its representative
    // (identity bindings are left implicit).
    let mut sub = Substitution::new();
    for i in 0..uf.terms.len() {
        if let Term::Var(v) = uf.terms[i] {
            let r = uf.find(i);
            if r != i {
                sub.bind(v, uf.terms[r]);
            }
        }
    }
    Some(sub)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::Vocabulary;

    #[test]
    fn apply_and_compose() {
        let mut voc = Vocabulary::new();
        let (x, y, z) = (voc.var("X"), voc.var("Y"), voc.var("Z"));
        let c = voc.constant("a");
        let mut s1 = Substitution::new();
        s1.bind(x, Term::Var(y));
        let mut s2 = Substitution::new();
        s2.bind(y, Term::Const(c));
        // (s2 ∘ s1)(x) = s2(s1(x)) = s2(y) = a
        let s = s2.compose(&s1);
        assert_eq!(s.apply_term(Term::Var(x)), Term::Const(c));
        assert_eq!(s.apply_term(Term::Var(y)), Term::Const(c));
        assert_eq!(s.apply_term(Term::Var(z)), Term::Var(z));
    }

    #[test]
    fn mgu_basic() {
        let mut voc = Vocabulary::new();
        let r = voc.pred("R", 2);
        let (x, y, z) = (voc.var("X"), voc.var("Y"), voc.var("Z"));
        let a = Atom::new(r, vec![Term::Var(x), Term::Var(y)]);
        let b = Atom::new(r, vec![Term::Var(z), Term::Var(z)]);
        let g = mgu_many(&[a.clone(), b.clone()]).expect("unifies");
        assert_eq!(g.apply_atom(&a), g.apply_atom(&b));
    }

    #[test]
    fn mgu_constant_clash() {
        let mut voc = Vocabulary::new();
        let r = voc.pred("R", 1);
        let (a, b) = (voc.constant("a"), voc.constant("b"));
        let aa = Atom::new(r, vec![Term::Const(a)]);
        let ab = Atom::new(r, vec![Term::Const(b)]);
        assert!(mgu_many(&[aa, ab]).is_none());
    }

    #[test]
    fn mgu_with_constant_binds_var() {
        let mut voc = Vocabulary::new();
        let r = voc.pred("R", 2);
        let (x, y) = (voc.var("X"), voc.var("Y"));
        let c = voc.constant("a");
        let a1 = Atom::new(r, vec![Term::Var(x), Term::Var(y)]);
        let a2 = Atom::new(r, vec![Term::Const(c), Term::Var(y)]);
        let g = mgu_many(&[a1.clone(), a2.clone()]).unwrap();
        assert_eq!(g.apply_term(Term::Var(x)), Term::Const(c));
        assert_eq!(g.apply_atom(&a1), g.apply_atom(&a2));
    }

    #[test]
    fn mgu_different_predicates_fails() {
        let mut voc = Vocabulary::new();
        let r = voc.pred("R", 1);
        let p = voc.pred("P", 1);
        let x = voc.var("X");
        let a1 = Atom::new(r, vec![Term::Var(x)]);
        let a2 = Atom::new(p, vec![Term::Var(x)]);
        assert!(mgu_atoms(&a1, &a2).is_none());
    }

    #[test]
    fn mgu_three_atoms() {
        let mut voc = Vocabulary::new();
        let r = voc.pred("R", 2);
        let (x, y, z, w) = (voc.var("X"), voc.var("Y"), voc.var("Z"), voc.var("W"));
        let atoms = [
            Atom::new(r, vec![Term::Var(x), Term::Var(y)]),
            Atom::new(r, vec![Term::Var(y), Term::Var(z)]),
            Atom::new(r, vec![Term::Var(z), Term::Var(w)]),
        ];
        let g = mgu_many(&atoms).unwrap();
        let imgs: Vec<Atom> = atoms.iter().map(|a| g.apply_atom(a)).collect();
        assert_eq!(imgs[0], imgs[1]);
        assert_eq!(imgs[1], imgs[2]);
    }
}
