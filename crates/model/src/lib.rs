//! # omq-model
//!
//! The relational data model underlying ontology-mediated queries (OMQs):
//! interned vocabularies, terms (constants, labeled nulls, variables), atoms,
//! instances and databases, conjunctive queries (CQs) and unions thereof
//! (UCQs), tuple-generating dependencies (tgds), and the OMQ triple
//! `(S, Σ, q)` itself.
//!
//! The types here follow Section 2 of *Containment for Rule-Based
//! Ontology-Mediated Queries* (Barceló, Berger, Pieris; PODS 2018):
//!
//! * a **schema** is a finite set of relation symbols with arities,
//! * an **instance** is a (possibly large) set of atoms over constants and
//!   nulls, while a **database** is a finite set of facts (constants only),
//! * a **CQ** is an existentially quantified conjunction of atoms,
//! * a **tgd** is a rule `φ(x̄,ȳ) → ∃z̄ ψ(x̄,z̄)`,
//! * an **OMQ** is a triple `(S, Σ, q)` evaluated under certain-answer
//!   semantics.
//!
//! A small text syntax for rules and queries is provided by [`parser`], and
//! human-readable rendering by [`display`].

pub mod atom;
pub mod display;
pub mod instance;
pub mod parser;
pub mod query;
pub mod rng;
pub mod subst;
pub mod symbols;
pub mod term;
pub mod tgd;

pub use atom::Atom;
pub use instance::{CardSketch, Instance};
pub use parser::{parse_program, parse_query, parse_tgd, ParseError, Program};
pub use query::{Cq, Ucq};
pub use subst::{mgu_atoms, mgu_many, mgu_refs, Substitution};
pub use symbols::{ConstId, NullId, PredId, Schema, VarId, Vocabulary};
pub use term::Term;
pub use tgd::{Omq, Tgd};
