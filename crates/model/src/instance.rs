//! Instances and databases: indexed sets of ground atoms.

use std::collections::{HashMap, HashSet};

use crate::atom::Atom;
use crate::symbols::{PredId, Schema};
use crate::term::Term;

/// An instance: a finite set of ground atoms over constants and nulls, with
/// per-predicate and per-(predicate, position, term) indexes to support fast
/// homomorphism search.
///
/// A *database* in the paper's sense is an instance containing only facts
/// (see [`Instance::is_database`]). Instances additionally arise as chase
/// results, where nulls appear.
#[derive(Clone, Debug, Default)]
pub struct Instance {
    atoms: Vec<Atom>,
    set: HashSet<Atom>,
    by_pred: HashMap<PredId, Vec<usize>>,
    /// (pred, position, term) -> atom indices having `term` at `position`.
    by_pos: HashMap<(PredId, usize, Term), Vec<usize>>,
}

impl Instance {
    /// The empty instance.
    pub fn new() -> Self {
        Instance::default()
    }

    /// Builds an instance from atoms (deduplicating).
    pub fn from_atoms(atoms: impl IntoIterator<Item = Atom>) -> Self {
        let mut i = Instance::new();
        for a in atoms {
            i.insert(a);
        }
        i
    }

    /// Inserts an atom; returns `true` if it was new.
    ///
    /// # Panics
    /// Panics (in debug builds) if the atom contains a variable — instances
    /// are ground by definition.
    pub fn insert(&mut self, atom: Atom) -> bool {
        debug_assert!(atom.is_ground(), "instances contain only ground atoms");
        if self.set.contains(&atom) {
            return false;
        }
        let idx = self.atoms.len();
        self.by_pred.entry(atom.pred).or_default().push(idx);
        for (pos, &t) in atom.args.iter().enumerate() {
            self.by_pos.entry((atom.pred, pos, t)).or_default().push(idx);
        }
        self.set.insert(atom.clone());
        self.atoms.push(atom);
        true
    }

    /// Does the instance contain this exact atom?
    pub fn contains(&self, atom: &Atom) -> bool {
        self.set.contains(atom)
    }

    /// All atoms, in insertion order.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Number of atoms (`|D|` in the paper).
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Is the instance empty?
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Indices of atoms with predicate `p`.
    pub fn atoms_with_pred(&self, p: PredId) -> &[usize] {
        self.by_pred.get(&p).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Indices of atoms with predicate `p` and term `t` at position `pos`.
    pub fn atoms_with_pred_term(&self, p: PredId, pos: usize, t: Term) -> &[usize] {
        self.by_pos
            .get(&(p, pos, t))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The atom at index `i`.
    pub fn atom(&self, i: usize) -> &Atom {
        &self.atoms[i]
    }

    /// The active domain `dom(I)`: all terms occurring in the instance, in
    /// first-occurrence order.
    pub fn active_domain(&self) -> Vec<Term> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for a in &self.atoms {
            for &t in &a.args {
                if seen.insert(t) {
                    out.push(t);
                }
            }
        }
        out
    }

    /// Is this a database, i.e. does it contain only facts (no nulls)?
    pub fn is_database(&self) -> bool {
        self.atoms.iter().all(Atom::is_fact)
    }

    /// The set of predicates that actually occur.
    pub fn schema(&self) -> Schema {
        Schema::from_preds(self.atoms.iter().map(|a| a.pred))
    }

    /// Restricts the instance to atoms whose predicate lies in `s`.
    pub fn restrict_to_schema(&self, s: &Schema) -> Instance {
        Instance::from_atoms(
            self.atoms
                .iter()
                .filter(|a| s.contains(a.pred))
                .cloned(),
        )
    }

    /// Splits the instance into its maximally connected components (§7.1).
    ///
    /// Two atoms are connected when they share a term; a component is a
    /// maximal connected subset. Atoms of arity 0 are excluded, following the
    /// paper's convention (footnote 5).
    pub fn components(&self) -> Vec<Instance> {
        // Union-find over atom indices, merging atoms that share a term.
        let n = self.atoms.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, i: usize) -> usize {
            if parent[i] != i {
                let r = find(parent, parent[i]);
                parent[i] = r;
            }
            parent[i]
        }
        let mut by_term: HashMap<Term, usize> = HashMap::new();
        for (i, a) in self.atoms.iter().enumerate() {
            for &t in &a.args {
                match by_term.get(&t) {
                    Some(&j) => {
                        let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                        if ri != rj {
                            parent[ri] = rj;
                        }
                    }
                    None => {
                        by_term.insert(t, i);
                    }
                }
            }
        }
        let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
        for i in 0..n {
            if self.atoms[i].arity() == 0 {
                continue;
            }
            let r = find(&mut parent, i);
            groups.entry(r).or_default().push(i);
        }
        let mut roots: Vec<usize> = groups.keys().copied().collect();
        roots.sort_unstable();
        roots
            .into_iter()
            .map(|r| Instance::from_atoms(groups[&r].iter().map(|&i| self.atoms[i].clone())))
            .collect()
    }

    /// Union of two instances.
    pub fn union(&self, other: &Instance) -> Instance {
        let mut u = self.clone();
        for a in other.atoms() {
            u.insert(a.clone());
        }
        u
    }
}

impl PartialEq for Instance {
    fn eq(&self, other: &Self) -> bool {
        self.set == other.set
    }
}
impl Eq for Instance {}

impl FromIterator<Atom> for Instance {
    fn from_iter<T: IntoIterator<Item = Atom>>(iter: T) -> Self {
        Instance::from_atoms(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::Vocabulary;

    fn fact(v: &mut Vocabulary, p: &str, cs: &[&str]) -> Atom {
        let pid = v.pred(p, cs.len());
        let args = cs.iter().map(|c| Term::Const(v.constant(c))).collect();
        Atom::new(pid, args)
    }

    #[test]
    fn insert_dedup_and_indexes() {
        let mut v = Vocabulary::new();
        let a1 = fact(&mut v, "R", &["a", "b"]);
        let a2 = fact(&mut v, "R", &["b", "c"]);
        let mut d = Instance::new();
        assert!(d.insert(a1.clone()));
        assert!(!d.insert(a1.clone()));
        assert!(d.insert(a2.clone()));
        assert_eq!(d.len(), 2);
        assert!(d.contains(&a1));
        let r = v.pred("R", 2);
        assert_eq!(d.atoms_with_pred(r).len(), 2);
        let b = Term::Const(v.constant("b"));
        assert_eq!(d.atoms_with_pred_term(r, 0, b), &[1]);
        assert_eq!(d.atoms_with_pred_term(r, 1, b), &[0]);
    }

    #[test]
    fn active_domain_order() {
        let mut v = Vocabulary::new();
        let d = Instance::from_atoms([
            fact(&mut v, "R", &["a", "b"]),
            fact(&mut v, "P", &["a"]),
            fact(&mut v, "P", &["c"]),
        ]);
        let dom = d.active_domain();
        assert_eq!(dom.len(), 3);
        assert!(d.is_database());
    }

    #[test]
    fn components_split() {
        let mut v = Vocabulary::new();
        let d = Instance::from_atoms([
            fact(&mut v, "R", &["a", "b"]),
            fact(&mut v, "R", &["b", "c"]),
            fact(&mut v, "R", &["x", "y"]),
            fact(&mut v, "P", &["z"]),
        ]);
        let comps = d.components();
        assert_eq!(comps.len(), 3);
        let sizes: Vec<usize> = comps.iter().map(Instance::len).collect();
        assert!(sizes.contains(&2) && sizes.iter().filter(|&&s| s == 1).count() == 2);
    }

    #[test]
    fn components_exclude_nullary() {
        let mut v = Vocabulary::new();
        let g = v.pred("Goal", 0);
        let mut d = Instance::new();
        d.insert(Atom::new(g, vec![]));
        d.insert(fact(&mut v, "P", &["a"]));
        assert_eq!(d.components().len(), 1);
    }

    #[test]
    fn restrict_and_union() {
        let mut v = Vocabulary::new();
        let a1 = fact(&mut v, "R", &["a", "b"]);
        let a2 = fact(&mut v, "P", &["a"]);
        let d = Instance::from_atoms([a1.clone(), a2.clone()]);
        let r = v.pred("R", 2);
        let s = Schema::from_preds([r]);
        let dr = d.restrict_to_schema(&s);
        assert_eq!(dr.len(), 1);
        let u = dr.union(&Instance::from_atoms([a2]));
        assert_eq!(u, d);
    }
}
