//! Instances and databases: indexed sets of ground atoms.

use std::collections::{HashMap, HashSet};

use crate::atom::Atom;
use crate::symbols::{PredId, Schema};
use crate::term::Term;

/// An instance: a finite set of ground atoms over constants and nulls, with
/// per-predicate and per-(predicate, position, term) indexes to support fast
/// homomorphism search.
///
/// A *database* in the paper's sense is an instance containing only facts
/// (see [`Instance::is_database`]). Instances additionally arise as chase
/// results, where nulls appear.
#[derive(Clone, Debug, Default)]
pub struct Instance {
    atoms: Vec<Atom>,
    set: HashSet<Atom>,
    by_pred: HashMap<PredId, Vec<usize>>,
    /// (pred, position, term) -> atom indices having `term` at `position`.
    by_pos: HashMap<(PredId, usize, Term), Vec<usize>>,
    /// Generation watermarks: `gen_bounds[g]` is the index of the first atom
    /// of generation `g + 1`. Atoms before `gen_bounds[0]` are generation 0.
    /// Since atom indices are append-only and monotone, this suffices to
    /// recover each atom's insertion round and to expose "delta" views of
    /// everything inserted since a given generation (semi-naive evaluation).
    gen_bounds: Vec<usize>,
    /// Struct-of-arrays mirror of the atoms plus incremental statistics,
    /// one store per predicate (see [`PredStore`]), indexed densely by
    /// predicate id — interned ids are small, and the insert path is too
    /// hot for a hash lookup.
    stores: Vec<PredStore>,
    /// Atom index -> row within its predicate's columnar store; parallel to
    /// `atoms` and to the per-predicate index lists in `by_pred`.
    pred_row: Vec<u32>,
}

/// Per-predicate columnar storage and statistics: one `Vec<i64>` of
/// [`Term::code`]s per argument position (rows in per-predicate insertion
/// order, parallel to the `by_pred` index list) and the per-position count
/// of distinct terms, maintained incrementally on insert. Both are pure
/// functions of the instance's atom set, so any planner decision derived
/// from them is deterministic.
#[derive(Clone, Debug, Default)]
struct PredStore {
    cols: Vec<Vec<i64>>,
    distinct: Vec<u32>,
}

/// A snapshot of per-predicate cardinalities and per-position
/// distinct-value counts, taken from [`Instance::card_sketch`]. The sketch
/// is a function of instance *content* only (insertion order and thread
/// count never affect it), which is what makes cost-based join orders
/// reproducible.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CardSketch {
    stats: HashMap<PredId, (u64, Vec<u32>)>,
}

impl CardSketch {
    /// Number of atoms with predicate `p` (0 if absent).
    pub fn rows(&self, p: PredId) -> u64 {
        self.stats.get(&p).map_or(0, |(r, _)| *r)
    }

    /// Number of distinct terms at position `pos` of predicate `p`
    /// (0 if the predicate is absent).
    pub fn distinct(&self, p: PredId, pos: usize) -> u64 {
        self.stats
            .get(&p)
            .and_then(|(_, d)| d.get(pos))
            .map_or(0, |&d| d as u64)
    }
}

impl Instance {
    /// The empty instance.
    pub fn new() -> Self {
        Instance::default()
    }

    /// Builds an instance from atoms (deduplicating).
    pub fn from_atoms(atoms: impl IntoIterator<Item = Atom>) -> Self {
        let mut i = Instance::new();
        for a in atoms {
            i.insert(a);
        }
        i
    }

    /// Inserts an atom; returns `true` if it was new.
    ///
    /// # Panics
    /// Panics (in debug builds) if the atom contains a variable — instances
    /// are ground by definition.
    pub fn insert(&mut self, atom: Atom) -> bool {
        debug_assert!(atom.is_ground(), "instances contain only ground atoms");
        if self.set.contains(&atom) {
            return false;
        }
        let idx = self.atoms.len();
        let rows = self.by_pred.entry(atom.pred).or_default();
        self.pred_row.push(rows.len() as u32);
        rows.push(idx);
        let pi = atom.pred.0 as usize;
        if self.stores.len() <= pi {
            self.stores.resize_with(pi + 1, PredStore::default);
        }
        let store = &mut self.stores[pi];
        if store.cols.len() < atom.args.len() {
            store.cols.resize_with(atom.args.len(), Vec::new);
            store.distinct.resize(atom.args.len(), 0);
        }
        for (pos, &t) in atom.args.iter().enumerate() {
            store.cols[pos].push(t.code());
            match self.by_pos.entry((atom.pred, pos, t)) {
                std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().push(idx),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(vec![idx]);
                    store.distinct[pos] += 1;
                }
            }
        }
        self.set.insert(atom.clone());
        self.atoms.push(atom);
        true
    }

    /// Does the instance contain this exact atom?
    pub fn contains(&self, atom: &Atom) -> bool {
        self.set.contains(atom)
    }

    /// All atoms, in insertion order.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Number of atoms (`|D|` in the paper).
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Is the instance empty?
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Indices of atoms with predicate `p`.
    pub fn atoms_with_pred(&self, p: PredId) -> &[usize] {
        self.by_pred.get(&p).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Indices of atoms with predicate `p` and term `t` at position `pos`.
    pub fn atoms_with_pred_term(&self, p: PredId, pos: usize, t: Term) -> &[usize] {
        self.by_pos
            .get(&(p, pos, t))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The atom at index `i`.
    pub fn atom(&self, i: usize) -> &Atom {
        &self.atoms[i]
    }

    /// The columnar view of predicate `p`: one column of [`Term::code`]s
    /// per argument position, rows in per-predicate insertion order —
    /// row `r` of the columns is the atom `atoms_with_pred(p)[r]`. Empty
    /// slice if the predicate is absent.
    pub fn columns(&self, p: PredId) -> &[Vec<i64>] {
        self.stores
            .get(p.0 as usize)
            .map(|s| s.cols.as_slice())
            .unwrap_or(&[])
    }

    /// The row of atom `i` within its predicate's columnar store.
    pub fn row_of(&self, i: usize) -> usize {
        self.pred_row[i] as usize
    }

    /// Number of distinct terms occurring at position `pos` of predicate
    /// `p`, maintained incrementally on insert.
    pub fn distinct_at(&self, p: PredId, pos: usize) -> usize {
        self.stores
            .get(p.0 as usize)
            .and_then(|s| s.distinct.get(pos))
            .map_or(0, |&d| d as usize)
    }

    /// Snapshots the cardinality statistics: per-predicate row counts and
    /// per-position distinct-value counts. O(#predicates + total arity) —
    /// cheap enough to take per plan compilation.
    pub fn card_sketch(&self) -> CardSketch {
        let stats = self
            .by_pred
            .iter()
            .map(|(&p, rows)| {
                let distinct = self
                    .stores
                    .get(p.0 as usize)
                    .map(|s| s.distinct.clone())
                    .unwrap_or_default();
                (p, (rows.len() as u64, distinct))
            })
            .collect();
        CardSketch { stats }
    }

    /// The current generation number. A fresh instance is generation 0;
    /// [`Instance::begin_generation`] advances it. Inserted atoms belong to
    /// the generation that was current at insertion time.
    pub fn generation(&self) -> u32 {
        self.gen_bounds.len() as u32
    }

    /// Starts a new generation and returns its number. Atoms inserted from
    /// now on report this generation from [`Instance::atom_generation`].
    pub fn begin_generation(&mut self) -> u32 {
        self.gen_bounds.push(self.atoms.len());
        self.generation()
    }

    /// The generation during which the atom at index `i` was inserted.
    pub fn atom_generation(&self, i: usize) -> u32 {
        self.gen_bounds.partition_point(|&b| b <= i) as u32
    }

    /// The index of the first atom of generation `g` (i.e. the watermark
    /// separating generations `< g` from generations `>= g`). For a `g`
    /// beyond the current generation this is the instance length.
    pub fn generation_start(&self, g: u32) -> usize {
        match g {
            0 => 0,
            g => self
                .gen_bounds
                .get(g as usize - 1)
                .copied()
                .unwrap_or(self.atoms.len()),
        }
    }

    /// The atoms inserted in generation `g` or later, in insertion order:
    /// the "delta" view used by semi-naive chase rounds.
    pub fn atoms_since(&self, g: u32) -> &[Atom] {
        &self.atoms[self.generation_start(g)..]
    }

    /// Indices of atoms with predicate `p` at index `start` or later. The
    /// per-predicate index is sorted (insertion order), so this is a binary
    /// search plus a subslice.
    pub fn atoms_with_pred_from(&self, p: PredId, start: usize) -> &[usize] {
        let idxs = self.atoms_with_pred(p);
        &idxs[idxs.partition_point(|&i| i < start)..]
    }

    /// Indices of atoms with predicate `p` inserted in generation `g` or
    /// later: the per-predicate delta view.
    pub fn atoms_with_pred_since(&self, p: PredId, g: u32) -> &[usize] {
        self.atoms_with_pred_from(p, self.generation_start(g))
    }

    /// The active domain `dom(I)`: all terms occurring in the instance, in
    /// first-occurrence order.
    pub fn active_domain(&self) -> Vec<Term> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for a in &self.atoms {
            for &t in &a.args {
                if seen.insert(t) {
                    out.push(t);
                }
            }
        }
        out
    }

    /// Is this a database, i.e. does it contain only facts (no nulls)?
    pub fn is_database(&self) -> bool {
        self.atoms.iter().all(Atom::is_fact)
    }

    /// The set of predicates that actually occur.
    pub fn schema(&self) -> Schema {
        Schema::from_preds(self.atoms.iter().map(|a| a.pred))
    }

    /// Restricts the instance to atoms whose predicate lies in `s`.
    pub fn restrict_to_schema(&self, s: &Schema) -> Instance {
        Instance::from_atoms(self.atoms.iter().filter(|a| s.contains(a.pred)).cloned())
    }

    /// Splits the instance into its maximally connected components (§7.1).
    ///
    /// Two atoms are connected when they share a term; a component is a
    /// maximal connected subset. Atoms of arity 0 are excluded, following the
    /// paper's convention (footnote 5).
    pub fn components(&self) -> Vec<Instance> {
        // Union-find over atom indices, merging atoms that share a term.
        let n = self.atoms.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, i: usize) -> usize {
            if parent[i] != i {
                let r = find(parent, parent[i]);
                parent[i] = r;
            }
            parent[i]
        }
        let mut by_term: HashMap<Term, usize> = HashMap::new();
        for (i, a) in self.atoms.iter().enumerate() {
            for &t in &a.args {
                match by_term.get(&t) {
                    Some(&j) => {
                        let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                        if ri != rj {
                            parent[ri] = rj;
                        }
                    }
                    None => {
                        by_term.insert(t, i);
                    }
                }
            }
        }
        let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
        for i in 0..n {
            if self.atoms[i].arity() == 0 {
                continue;
            }
            let r = find(&mut parent, i);
            groups.entry(r).or_default().push(i);
        }
        let mut roots: Vec<usize> = groups.keys().copied().collect();
        roots.sort_unstable();
        roots
            .into_iter()
            .map(|r| Instance::from_atoms(groups[&r].iter().map(|&i| self.atoms[i].clone())))
            .collect()
    }

    /// Union of two instances.
    pub fn union(&self, other: &Instance) -> Instance {
        let mut u = self.clone();
        for a in other.atoms() {
            u.insert(a.clone());
        }
        u
    }
}

impl PartialEq for Instance {
    fn eq(&self, other: &Self) -> bool {
        self.set == other.set
    }
}
impl Eq for Instance {}

impl FromIterator<Atom> for Instance {
    fn from_iter<T: IntoIterator<Item = Atom>>(iter: T) -> Self {
        Instance::from_atoms(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::Vocabulary;

    fn fact(v: &mut Vocabulary, p: &str, cs: &[&str]) -> Atom {
        let pid = v.pred(p, cs.len());
        let args = cs.iter().map(|c| Term::Const(v.constant(c))).collect();
        Atom::new(pid, args)
    }

    #[test]
    fn insert_dedup_and_indexes() {
        let mut v = Vocabulary::new();
        let a1 = fact(&mut v, "R", &["a", "b"]);
        let a2 = fact(&mut v, "R", &["b", "c"]);
        let mut d = Instance::new();
        assert!(d.insert(a1.clone()));
        assert!(!d.insert(a1.clone()));
        assert!(d.insert(a2.clone()));
        assert_eq!(d.len(), 2);
        assert!(d.contains(&a1));
        let r = v.pred("R", 2);
        assert_eq!(d.atoms_with_pred(r).len(), 2);
        let b = Term::Const(v.constant("b"));
        assert_eq!(d.atoms_with_pred_term(r, 0, b), &[1]);
        assert_eq!(d.atoms_with_pred_term(r, 1, b), &[0]);
    }

    #[test]
    fn active_domain_order() {
        let mut v = Vocabulary::new();
        let d = Instance::from_atoms([
            fact(&mut v, "R", &["a", "b"]),
            fact(&mut v, "P", &["a"]),
            fact(&mut v, "P", &["c"]),
        ]);
        let dom = d.active_domain();
        assert_eq!(dom.len(), 3);
        assert!(d.is_database());
    }

    #[test]
    fn components_split() {
        let mut v = Vocabulary::new();
        let d = Instance::from_atoms([
            fact(&mut v, "R", &["a", "b"]),
            fact(&mut v, "R", &["b", "c"]),
            fact(&mut v, "R", &["x", "y"]),
            fact(&mut v, "P", &["z"]),
        ]);
        let comps = d.components();
        assert_eq!(comps.len(), 3);
        let sizes: Vec<usize> = comps.iter().map(Instance::len).collect();
        assert!(sizes.contains(&2) && sizes.iter().filter(|&&s| s == 1).count() == 2);
    }

    #[test]
    fn components_exclude_nullary() {
        let mut v = Vocabulary::new();
        let g = v.pred("Goal", 0);
        let mut d = Instance::new();
        d.insert(Atom::new(g, vec![]));
        d.insert(fact(&mut v, "P", &["a"]));
        assert_eq!(d.components().len(), 1);
    }

    #[test]
    fn generation_watermarks() {
        let mut v = Vocabulary::new();
        let mut d = Instance::new();
        assert_eq!(d.generation(), 0);
        d.insert(fact(&mut v, "R", &["a", "b"]));
        assert_eq!(d.begin_generation(), 1);
        d.insert(fact(&mut v, "R", &["b", "c"]));
        d.insert(fact(&mut v, "P", &["a"]));
        assert_eq!(d.begin_generation(), 2);
        d.insert(fact(&mut v, "P", &["b"]));

        assert_eq!(d.atom_generation(0), 0);
        assert_eq!(d.atom_generation(1), 1);
        assert_eq!(d.atom_generation(2), 1);
        assert_eq!(d.atom_generation(3), 2);
        assert_eq!(d.generation_start(0), 0);
        assert_eq!(d.generation_start(1), 1);
        assert_eq!(d.generation_start(2), 3);
        assert_eq!(d.generation_start(9), d.len());
        assert_eq!(d.atoms_since(1).len(), 3);
        assert_eq!(d.atoms_since(2).len(), 1);

        let r = v.pred("R", 2);
        let p = v.pred("P", 1);
        assert_eq!(d.atoms_with_pred_since(r, 1), &[1]);
        assert_eq!(d.atoms_with_pred_since(r, 2), &[] as &[usize]);
        assert_eq!(d.atoms_with_pred_since(p, 1), &[2, 3]);
        assert_eq!(d.atoms_with_pred_from(p, 3), &[3]);
        // Re-inserting an existing atom keeps its original generation.
        d.insert(fact(&mut v, "R", &["a", "b"]));
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn columnar_mirror_and_distinct_counts() {
        let mut v = Vocabulary::new();
        let mut d = Instance::new();
        d.insert(fact(&mut v, "R", &["a", "b"]));
        d.insert(fact(&mut v, "R", &["a", "c"]));
        d.insert(fact(&mut v, "P", &["b"]));
        d.insert(fact(&mut v, "R", &["b", "b"]));
        let r = v.pred("R", 2);
        let p = v.pred("P", 1);

        // Columns are parallel to the per-predicate index list.
        let cols = d.columns(r);
        assert_eq!(cols.len(), 2);
        for (row, &idx) in d.atoms_with_pred(r).iter().enumerate() {
            assert_eq!(d.row_of(idx), row);
            for (pos, col) in cols.iter().enumerate() {
                assert_eq!(col[row], d.atom(idx).args[pos].code());
                assert_eq!(Term::from_code(col[row]), d.atom(idx).args[pos]);
            }
        }

        // Distinct counts match the brute-force count, incl. after dedup.
        d.insert(fact(&mut v, "R", &["a", "b"]));
        assert_eq!(d.distinct_at(r, 0), 2); // a, b
        assert_eq!(d.distinct_at(r, 1), 2); // b, c
        assert_eq!(d.distinct_at(p, 0), 1);
        assert_eq!(d.distinct_at(p, 1), 0);

        let sk = d.card_sketch();
        assert_eq!(sk.rows(r), 3);
        assert_eq!(sk.rows(p), 1);
        assert_eq!(sk.distinct(r, 0), 2);
        assert_eq!(sk.distinct(r, 1), 2);
        assert_eq!(sk.rows(v.pred("Q", 1)), 0);
    }

    #[test]
    fn restrict_and_union() {
        let mut v = Vocabulary::new();
        let a1 = fact(&mut v, "R", &["a", "b"]);
        let a2 = fact(&mut v, "P", &["a"]);
        let d = Instance::from_atoms([a1.clone(), a2.clone()]);
        let r = v.pred("R", 2);
        let s = Schema::from_preds([r]);
        let dr = d.restrict_to_schema(&s);
        assert_eq!(dr.len(), 1);
        let u = dr.union(&Instance::from_atoms([a2]));
        assert_eq!(u, d);
    }
}
