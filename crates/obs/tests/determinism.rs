//! Trace-determinism guarantees (DESIGN.md §5):
//!
//! * a fixed single-threaded run under a timing-free [`JsonlSink`] produces
//!   a byte-identical event stream on every repeat — span ids are allocated
//!   in program order, names are static, and no wall-clock field is written;
//! * a multi-threaded run produces the same *multiset* of events across
//!   repeats once ids are normalized away (scheduling permutes ids and
//!   interleaving, never the set of spans and counters emitted).
//!
//! Only meaningful with the real recorder; with `enabled` off every entry
//! point is a no-op and there is nothing to test.
#![cfg(feature = "enabled")]

use std::sync::{Arc, Mutex};

use omq_chase::{chase, parallel_indexed, ChaseConfig};
use omq_model::{parse_program, Instance};
use omq_obs::{install, Event, JsonlSink, Recorder, SharedBuf, Sink};

/// One instrumented single-threaded chase; returns the JSONL trace.
fn traced_chase() -> String {
    let prog = parse_program(
        "P(X) -> exists Y . R(X,Y)\n\
         R(X,Y) -> P(Y)\n\
         P(X), R(X,Y) -> S(Y)\n",
    )
    .unwrap();
    let mut voc = prog.voc.clone();
    let mut db = Instance::new();
    for fact in ["P(a)", "P(b)", "R(a,b)"] {
        let t = omq_model::parse_tgd(&mut voc, &format!("true -> {fact}")).unwrap();
        for a in t.head {
            db.insert(a);
        }
    }
    let buf = SharedBuf::new();
    let sink = Arc::new(JsonlSink::new(Box::new(buf.clone()), false));
    let rec = Recorder::new(vec![sink]);
    let _g = install(Some(rec));
    let cfg = ChaseConfig {
        max_depth: Some(3),
        ..ChaseConfig::default()
    };
    let out = chase(&db, &prog.tgds, &mut voc, &cfg);
    assert!(out.instance.len() > db.len(), "the chase derived something");
    buf.take_string()
}

#[test]
fn single_threaded_jsonl_trace_is_byte_identical() {
    let first = traced_chase();
    assert!(!first.is_empty());
    assert!(first.contains(r#""name":"chase""#));
    assert!(first.contains(r#""name":"chase.round""#));
    assert!(first.contains(r#""ev":"count""#));
    for _ in 0..3 {
        assert_eq!(first, traced_chase(), "trace must not vary across repeats");
    }
}

/// Collects events as (kind, name, delta) triples — ids dropped, which is
/// exactly the normalization the multiset guarantee is stated under.
#[derive(Default)]
struct NormalizingSink(Mutex<Vec<(&'static str, &'static str, u64)>>);

impl Sink for NormalizingSink {
    fn event(&self, ev: &Event) {
        let row = match *ev {
            Event::Enter { name, .. } => ("enter", name, 0),
            Event::Exit { name, .. } => ("exit", name, 0),
            Event::Count { name, delta, .. } => ("count", name, delta),
        };
        self.0.lock().unwrap().push(row);
    }
}

/// One multi-threaded instrumented run; returns the sorted (normalized)
/// event multiset.
fn traced_parallel() -> Vec<(&'static str, &'static str, u64)> {
    let sink = Arc::new(NormalizingSink::default());
    let rec = Recorder::new(vec![sink.clone() as Arc<dyn Sink>]);
    let _g = install(Some(rec));
    let _root = omq_obs::span("contain.sweep");
    // The worker pool re-installs the caller's recorder in every worker
    // (see omq_chase::parallel_indexed), so worker spans land in this trace.
    parallel_indexed(
        4,
        24,
        || (),
        |(), i| {
            let _s = omq_obs::span("hom.probe");
            omq_obs::counter("contain.witnesses_checked", (i % 3 == 0) as u64);
        },
    );
    drop(_root);
    let mut rows = std::mem::take(&mut *sink.0.lock().unwrap());
    rows.sort();
    rows
}

#[test]
fn multi_threaded_trace_is_the_same_multiset() {
    let first = traced_parallel();
    let probes = first
        .iter()
        .filter(|&&(kind, name, _)| kind == "enter" && name == "hom.probe")
        .count();
    assert_eq!(probes, 24, "one probe span per work item");
    let checked: u64 = first
        .iter()
        .filter(|&&(kind, name, _)| kind == "count" && name == "contain.witnesses_checked")
        .map(|&(_, _, d)| d)
        .sum();
    assert_eq!(checked, 8, "every third item counts one witness");
    for _ in 0..3 {
        assert_eq!(first, traced_parallel(), "normalized multiset must repeat");
    }
}
