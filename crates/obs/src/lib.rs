//! # omq-obs
//!
//! Zero-overhead-when-disabled instrumentation core for the omq workspace:
//! hierarchical span timers, a typed counter registry, and a pluggable sink
//! API with two built-in sinks (an in-memory [`Aggregator`] with log-scale
//! latency histograms, and a [`JsonlSink`] trace-event writer).
//!
//! ## Model
//!
//! A [`Recorder`] owns a list of sinks and hands out monotonically increasing
//! span ids. Recorders are *installed* per thread ([`install`]); the engine
//! crates call [`span`] / [`counter`] unconditionally, and when no recorder is
//! installed those calls are a single thread-local read. With the crate's
//! `enabled` feature off (workspace `--no-default-features`), every entry
//! point compiles to an empty inlined body — no thread-local, no clock reads,
//! no atomics.
//!
//! Span names form a fixed taxonomy (see DESIGN.md §5): `chase`,
//! `chase.round`, `hom.compile`, `hom.plan.cost`, `hom.probe`, `rewrite`,
//! `rewrite.round`, `rewrite.expand`, `rewrite.merge`, `rewrite.prune`,
//! `contain`, `contain.sweep`, `serve.<op>`. Counters carry the legacy
//! stats-struct fields (`chase.triggers_fired`, `rewrite.generated`, …) so
//! the manual stat-threading has a single typed sink, plus the adaptive
//! planner's events: `hom.plan.reopt` (one per cached plan recompiled after
//! cost-model divergence) and the `hom.est_ratio_*` /
//! `rewrite.est_ratio_*` estimate-quality buckets.
//!
//! ## Determinism
//!
//! Event *contents* are deterministic for a fixed single-threaded run when
//! the sink omits timing (see [`JsonlSink::new`] with `timing = false`):
//! span ids are allocated in program order from a per-recorder atomic.
//! Multi-threaded runs produce the same multiset of events up to id
//! renaming; `tests/determinism.rs` locks both properties in.

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

pub mod flight;
pub mod metrics;

/// Log-scale histogram width shared by [`Aggregator`] and
/// [`metrics::Histogram`]: bucket 0 holds `0 μs`, bucket `k ≥ 1` holds
/// `[2^(k-1), 2^k)` μs.
pub const BUCKETS: usize = 40;

static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

/// Allocate a process-unique trace id (never 0 — 0 means "untraced" on
/// events). Unconditional: ids exist even with `enabled` off, so the
/// flight recorder and serve protocol can use them in every build.
pub fn next_trace_id() -> u64 {
    NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed)
}

/// One trace event, as delivered to every [`Sink`] of the recorder.
/// `trace` is the trace id of the request the event belongs to, or 0
/// when the recorder was built without one ([`Recorder::new`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A span opened. `parent` is 0 for root spans.
    Enter {
        id: u64,
        parent: u64,
        name: &'static str,
        trace: u64,
    },
    /// A span closed, `dur_ns` after its `Enter`.
    Exit {
        id: u64,
        name: &'static str,
        dur_ns: u64,
        trace: u64,
    },
    /// A counter increment (zero deltas are filtered at the call site).
    Count {
        name: &'static str,
        delta: u64,
        trace: u64,
    },
}

/// A trace-event consumer. Sinks must tolerate concurrent events from
/// several threads (the recorder is shared across a worker pool).
pub trait Sink: Send + Sync {
    fn event(&self, ev: &Event);
}

/// Aggregated view of one phase (one span name) from an [`Aggregator`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSnapshot {
    pub name: String,
    pub count: u64,
    pub total_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
    /// Median, from the log-scale histogram, clamped to `[min, max]`. μs.
    pub p50_us: u64,
    /// 99th percentile, same estimator. μs.
    pub p99_us: u64,
}

/// A shared growable byte buffer implementing [`Write`] — lets tests and the
/// serve layer capture a [`JsonlSink`] stream in memory.
#[derive(Clone, Default)]
pub struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn contents(&self) -> Vec<u8> {
        self.0.lock().unwrap().clone()
    }

    /// The buffered bytes as UTF-8 (JSONL sinks only ever write UTF-8).
    pub fn take_string(&self) -> String {
        String::from_utf8(std::mem::take(&mut *self.0.lock().unwrap())).unwrap()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// In-memory aggregator sink
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct PhaseAgg {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
    /// Log-scale histogram over microseconds: bucket 0 holds `0 μs`,
    /// bucket `k ≥ 1` holds durations in `[2^(k-1), 2^k)` μs.
    buckets: [u64; BUCKETS],
}

impl Default for PhaseAgg {
    fn default() -> Self {
        PhaseAgg {
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl PhaseAgg {
    fn record(&mut self, dur_ns: u64) {
        self.count += 1;
        self.total_ns += dur_ns;
        self.min_ns = self.min_ns.min(dur_ns);
        self.max_ns = self.max_ns.max(dur_ns);
        let us = dur_ns / 1_000;
        let idx = (u64::BITS - us.leading_zeros()) as usize;
        self.buckets[idx.min(BUCKETS - 1)] += 1;
    }

    /// Percentile estimate from the histogram, using log-linear
    /// interpolation inside the matched bucket (see
    /// [`metrics::histogram_quantile_us`]), clamped to the observed range.
    fn percentile_us(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        metrics::histogram_quantile_us(&self.buckets, self.count, p)
            .clamp(self.min_ns / 1_000, self.max_ns / 1_000)
    }
}

/// Raw histogram view of one phase, for Prometheus-style exposition
/// (`_bucket`/`_sum`/`_count` series need the buckets, not quantiles).
#[derive(Debug, Clone)]
pub struct PhaseBuckets {
    pub name: String,
    pub buckets: [u64; BUCKETS],
    pub count: u64,
    pub total_ns: u64,
}

#[derive(Default)]
struct AggInner {
    phases: BTreeMap<&'static str, PhaseAgg>,
    counters: BTreeMap<&'static str, u64>,
}

/// In-memory aggregating sink: per-phase wall-clock histograms with fixed
/// log-scale buckets, plus a counter map. Also usable directly (without a
/// recorder) via [`Aggregator::record`] — the serve engine feeds its per-op
/// latency histograms this way, so they exist even with `obs` compiled out.
#[derive(Default)]
pub struct Aggregator {
    inner: Mutex<AggInner>,
}

impl Aggregator {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one duration sample under `name`.
    pub fn record(&self, name: &'static str, dur: std::time::Duration) {
        self.record_ns(name, dur.as_nanos() as u64);
    }

    fn record_ns(&self, name: &'static str, dur_ns: u64) {
        self.inner
            .lock()
            .unwrap()
            .phases
            .entry(name)
            .or_default()
            .record(dur_ns);
    }

    /// Add `delta` to counter `name`.
    pub fn add(&self, name: &'static str, delta: u64) {
        if delta == 0 {
            return;
        }
        *self.inner.lock().unwrap().counters.entry(name).or_default() += delta;
    }

    /// All phases, sorted by name (deterministic).
    pub fn phases(&self) -> Vec<PhaseSnapshot> {
        let inner = self.inner.lock().unwrap();
        inner
            .phases
            .iter()
            .map(|(name, agg)| PhaseSnapshot {
                name: (*name).to_string(),
                count: agg.count,
                total_ns: agg.total_ns,
                min_ns: if agg.count == 0 { 0 } else { agg.min_ns },
                max_ns: agg.max_ns,
                p50_us: agg.percentile_us(0.50),
                p99_us: agg.percentile_us(0.99),
            })
            .collect()
    }

    /// All phases with their raw log-scale buckets, sorted by name.
    pub fn raw_phases(&self) -> Vec<PhaseBuckets> {
        let inner = self.inner.lock().unwrap();
        inner
            .phases
            .iter()
            .map(|(name, agg)| PhaseBuckets {
                name: (*name).to_string(),
                buckets: agg.buckets,
                count: agg.count,
                total_ns: agg.total_ns,
            })
            .collect()
    }

    /// All counters, sorted by name (deterministic).
    pub fn counters(&self) -> Vec<(String, u64)> {
        let inner = self.inner.lock().unwrap();
        inner
            .counters
            .iter()
            .map(|(name, v)| ((*name).to_string(), *v))
            .collect()
    }

    pub fn is_empty(&self) -> bool {
        let inner = self.inner.lock().unwrap();
        inner.phases.is_empty() && inner.counters.is_empty()
    }
}

impl Sink for Aggregator {
    fn event(&self, ev: &Event) {
        match *ev {
            Event::Exit { name, dur_ns, .. } => self.record_ns(name, dur_ns),
            Event::Count { name, delta, .. } => self.add(name, delta),
            Event::Enter { .. } => {}
        }
    }
}

// ---------------------------------------------------------------------------
// JSONL trace-event sink
// ---------------------------------------------------------------------------

/// Writes one JSON object per event:
/// `{"ev":"enter","id":N,"parent":M,"name":"…"}`,
/// `{"ev":"exit","id":N,"name":"…","dur_us":K}`,
/// `{"ev":"count","name":"…","delta":K}`.
///
/// With `timing = false` the `dur_us` field is omitted, which makes the
/// stream for a fixed single-threaded run byte-identical across repeats
/// (span ids are allocated in program order; names are static).
///
/// Events from a recorder carrying a trace id ([`Recorder::with_trace`])
/// gain a trailing `"trace":N` field; id-0 (untraced) events render
/// exactly as before, so existing capture formats are unchanged.
pub struct JsonlSink {
    out: Mutex<Box<dyn Write + Send>>,
    timing: bool,
}

impl JsonlSink {
    pub fn new(out: Box<dyn Write + Send>, timing: bool) -> Self {
        JsonlSink {
            out: Mutex::new(out),
            timing,
        }
    }
}

impl Sink for JsonlSink {
    fn event(&self, ev: &Event) {
        // Span/counter names are static identifiers (no quotes or
        // backslashes), so no JSON string escaping is needed.
        let trace = match *ev {
            Event::Enter { trace, .. } | Event::Exit { trace, .. } | Event::Count { trace, .. } => {
                trace
            }
        };
        let tr = if trace == 0 {
            String::new()
        } else {
            format!(",\"trace\":{trace}")
        };
        let line = match *ev {
            Event::Enter {
                id, parent, name, ..
            } => {
                format!(
                    "{{\"ev\":\"enter\",\"id\":{id},\"parent\":{parent},\"name\":\"{name}\"{tr}}}\n"
                )
            }
            Event::Exit {
                id, name, dur_ns, ..
            } => {
                if self.timing {
                    format!(
                        "{{\"ev\":\"exit\",\"id\":{id},\"name\":\"{name}\",\"dur_us\":{}{tr}}}\n",
                        dur_ns / 1_000
                    )
                } else {
                    format!("{{\"ev\":\"exit\",\"id\":{id},\"name\":\"{name}\"{tr}}}\n")
                }
            }
            Event::Count { name, delta, .. } => {
                format!("{{\"ev\":\"count\",\"name\":\"{name}\",\"delta\":{delta}{tr}}}\n")
            }
        };
        let mut out = self.out.lock().unwrap();
        let _ = out.write_all(line.as_bytes());
        let _ = out.flush();
    }
}

// ---------------------------------------------------------------------------
// Recorder + thread-local install (real implementation)
// ---------------------------------------------------------------------------

#[cfg(feature = "enabled")]
mod imp {
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Instant;

    use super::{Event, Sink};

    /// Owns the sinks and the span-id counter. Shared (`Arc`) across the
    /// threads participating in one instrumented run.
    pub struct Recorder {
        next_id: AtomicU64,
        trace: u64,
        sinks: Vec<Arc<dyn Sink>>,
    }

    impl Recorder {
        pub fn new(sinks: Vec<Arc<dyn Sink>>) -> Arc<Recorder> {
            Recorder::with_trace(sinks, 0)
        }

        /// A recorder whose every event carries `trace` as its trace id
        /// (the serve tier allocates one per request via
        /// [`crate::next_trace_id`]).
        pub fn with_trace(sinks: Vec<Arc<dyn Sink>>, trace: u64) -> Arc<Recorder> {
            Arc::new(Recorder {
                next_id: AtomicU64::new(1),
                trace,
                sinks,
            })
        }

        fn emit(&self, ev: &Event) {
            for sink in &self.sinks {
                sink.event(ev);
            }
        }
    }

    struct Local {
        rec: Arc<Recorder>,
        /// Open span ids on this thread, innermost last.
        stack: Vec<u64>,
    }

    thread_local! {
        static CURRENT: RefCell<Option<Local>> = const { RefCell::new(None) };
    }

    /// Restores the previously installed recorder on drop.
    pub struct InstallGuard {
        prev: Option<Option<Local>>,
    }

    impl Drop for InstallGuard {
        fn drop(&mut self) {
            if let Some(prev) = self.prev.take() {
                CURRENT.with(|c| *c.borrow_mut() = prev);
            }
        }
    }

    /// Install `rec` as this thread's recorder (or clear it with `None`)
    /// until the returned guard drops.
    pub fn install(rec: Option<Arc<Recorder>>) -> InstallGuard {
        let prev = CURRENT.with(|c| {
            c.replace(rec.map(|rec| Local {
                rec,
                stack: Vec::new(),
            }))
        });
        InstallGuard { prev: Some(prev) }
    }

    /// The recorder installed on this thread, if any. Capture this before
    /// spawning workers and re-`install` it inside each one.
    pub fn current() -> Option<Arc<Recorder>> {
        CURRENT.with(|c| c.borrow().as_ref().map(|l| l.rec.clone()))
    }

    /// True iff a recorder is installed on this thread. Use to skip
    /// non-trivial argument computation for counters.
    #[inline]
    pub fn active() -> bool {
        CURRENT.with(|c| c.borrow().is_some())
    }

    /// Closes its span on drop.
    pub struct SpanGuard {
        open: Option<(Arc<Recorder>, u64, &'static str, Instant)>,
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            if let Some((rec, id, name, start)) = self.open.take() {
                let dur_ns = start.elapsed().as_nanos() as u64;
                CURRENT.with(|c| {
                    if let Some(local) = c.borrow_mut().as_mut() {
                        if local.stack.last() == Some(&id) {
                            local.stack.pop();
                        } else {
                            // Out-of-order drop (shouldn't happen with RAII
                            // guards, but never corrupt the stack).
                            local.stack.retain(|&x| x != id);
                        }
                    }
                });
                rec.emit(&Event::Exit {
                    id,
                    name,
                    dur_ns,
                    trace: rec.trace,
                });
            }
        }
    }

    /// Open a span named `name` under the current thread's open span (if
    /// any); a no-op returning an inert guard when no recorder is installed.
    pub fn span(name: &'static str) -> SpanGuard {
        let opened = CURRENT.with(|c| {
            let mut b = c.borrow_mut();
            let local = b.as_mut()?;
            let id = local.rec.next_id.fetch_add(1, Ordering::Relaxed);
            let parent = local.stack.last().copied().unwrap_or(0);
            local.stack.push(id);
            Some((local.rec.clone(), id, parent))
        });
        match opened {
            None => SpanGuard { open: None },
            Some((rec, id, parent)) => {
                rec.emit(&Event::Enter {
                    id,
                    parent,
                    name,
                    trace: rec.trace,
                });
                SpanGuard {
                    open: Some((rec, id, name, Instant::now())),
                }
            }
        }
    }

    /// Emit a counter increment (skipped when `delta == 0` or no recorder).
    pub fn counter(name: &'static str, delta: u64) {
        if delta == 0 {
            return;
        }
        if let Some(rec) = current() {
            rec.emit(&Event::Count {
                name,
                delta,
                trace: rec.trace,
            });
        }
    }

    /// Emit several counters with a single thread-local lookup; zero deltas
    /// are skipped.
    pub fn counters(items: &[(&'static str, u64)]) {
        let Some(rec) = current() else { return };
        for &(name, delta) in items {
            if delta != 0 {
                rec.emit(&Event::Count {
                    name,
                    delta,
                    trace: rec.trace,
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// No-op surface (feature `enabled` off)
// ---------------------------------------------------------------------------

#[cfg(not(feature = "enabled"))]
mod imp {
    use std::sync::Arc;

    use super::Sink;

    /// Inert stand-in: with `enabled` off there is no recorder state at all.
    pub struct Recorder;

    impl Recorder {
        pub fn new(_sinks: Vec<Arc<dyn Sink>>) -> Arc<Recorder> {
            Arc::new(Recorder)
        }

        pub fn with_trace(_sinks: Vec<Arc<dyn Sink>>, _trace: u64) -> Arc<Recorder> {
            Arc::new(Recorder)
        }
    }

    pub struct InstallGuard;

    #[inline(always)]
    pub fn install(_rec: Option<Arc<Recorder>>) -> InstallGuard {
        InstallGuard
    }

    #[inline(always)]
    pub fn current() -> Option<Arc<Recorder>> {
        None
    }

    #[inline(always)]
    pub fn active() -> bool {
        false
    }

    pub struct SpanGuard;

    // An (empty) Drop impl so call sites that close a span early with an
    // explicit `drop(guard)` lint identically in both feature modes.
    impl Drop for SpanGuard {
        #[inline(always)]
        fn drop(&mut self) {}
    }

    #[inline(always)]
    pub fn span(_name: &'static str) -> SpanGuard {
        SpanGuard
    }

    #[inline(always)]
    pub fn counter(_name: &'static str, _delta: u64) {}

    #[inline(always)]
    pub fn counters(_items: &[(&'static str, u64)]) {}
}

pub use imp::{
    active, counter, counters, current, install, span, InstallGuard, Recorder, SpanGuard,
};

/// `span!("name")` — open a span guard bound to the enclosing scope.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

/// `count!("name", delta)` — emit a counter increment.
#[macro_export]
macro_rules! count {
    ($name:expr, $delta:expr) => {
        $crate::counter($name, $delta as u64)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregator_histogram_percentiles() {
        let agg = Aggregator::new();
        for us in [1u64, 2, 3, 100, 200, 5000] {
            agg.record("p", std::time::Duration::from_micros(us));
        }
        agg.add("c", 3);
        agg.add("c", 0); // filtered
        agg.add("c", 4);
        let phases = agg.phases();
        assert_eq!(phases.len(), 1);
        let p = &phases[0];
        assert_eq!(p.name, "p");
        assert_eq!(p.count, 6);
        assert_eq!(p.min_ns, 1_000);
        assert_eq!(p.max_ns, 5_000_000);
        assert!(p.p50_us >= 1 && p.p50_us <= 200, "p50 {}", p.p50_us);
        assert!(p.p99_us >= 200, "p99 {}", p.p99_us);
        assert_eq!(agg.counters(), vec![("c".to_string(), 7)]);
    }

    #[test]
    fn percentile_empty_phase_is_zero() {
        let agg = PhaseAgg::default();
        assert_eq!(agg.percentile_us(0.5), 0);
        assert_eq!(agg.percentile_us(0.99), 0);
    }

    #[test]
    fn percentile_single_sample_is_exact() {
        // Interpolation lands mid-bucket, but the [min, max] clamp pins a
        // lone sample to its exact value.
        let mut agg = PhaseAgg::default();
        agg.record(100_000); // 100 us
        assert_eq!(agg.percentile_us(0.5), 100);
        assert_eq!(agg.percentile_us(0.99), 100);
    }

    #[test]
    fn percentile_two_bucket_spread_interpolates() {
        let mut agg = PhaseAgg::default();
        agg.record(2_000); // 2 us -> bucket 2
        agg.record(1_000_000); // 1000 us -> bucket 10
        let p50 = agg.percentile_us(0.5);
        let p99 = agg.percentile_us(0.99);
        // p50 interpolates inside [2, 4) instead of snapping to the bucket
        // upper bound; p99 sits in the upper bucket, clamped to max.
        assert!((2..4).contains(&p50), "p50 {p50}");
        assert!((512..=1000).contains(&p99), "p99 {p99}");
        assert!(p50 < p99);
    }

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert!(a != 0 && b != 0 && a != b);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn spans_nest_and_reach_sinks() {
        use std::sync::Arc;
        let buf = SharedBuf::new();
        let sink = Arc::new(JsonlSink::new(Box::new(buf.clone()), false));
        let rec = Recorder::new(vec![sink]);
        {
            let _g = install(Some(rec));
            let _outer = span("outer");
            {
                let _inner = span("inner");
                counter("hits", 2);
            }
        }
        let text = buf.take_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines,
            vec![
                r#"{"ev":"enter","id":1,"parent":0,"name":"outer"}"#,
                r#"{"ev":"enter","id":2,"parent":1,"name":"inner"}"#,
                r#"{"ev":"count","name":"hits","delta":2}"#,
                r#"{"ev":"exit","id":2,"name":"inner"}"#,
                r#"{"ev":"exit","id":1,"name":"outer"}"#,
            ]
        );
        // Nothing recorded once the install guard dropped.
        let _orphan = span("orphan");
        drop(_orphan);
        assert!(buf.take_string().is_empty());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn trace_ids_stamp_sink_events() {
        use std::sync::Arc;
        let buf = SharedBuf::new();
        let sink = Arc::new(JsonlSink::new(Box::new(buf.clone()), false));
        let rec = Recorder::with_trace(vec![sink], 42);
        {
            let _g = install(Some(rec));
            let _s = span("outer");
            counter("hits", 1);
        }
        let text = buf.take_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines,
            vec![
                r#"{"ev":"enter","id":1,"parent":0,"name":"outer","trace":42}"#,
                r#"{"ev":"count","name":"hits","delta":1,"trace":42}"#,
                r#"{"ev":"exit","id":1,"name":"outer","trace":42}"#,
            ]
        );
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn noop_surface_is_inert() {
        let _g = install(None);
        let _s = span("anything");
        counter("c", 5);
        counters(&[("a", 1), ("b", 2)]);
        assert!(!active());
        assert!(current().is_none());
    }
}
