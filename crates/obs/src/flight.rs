//! Flight recorder: an always-on ring of recent span trees with
//! tail-based retention. Every request's tree is offered; the recorder
//! keeps a short ring of recent trees plus a separate retained ring for
//! the requests that matter after the fact — shed, timed out, or slower
//! than a threshold — so a `trace_dump` can explain an incident without
//! tracing having been pre-enabled.
//!
//! Like `metrics`, this module compiles unconditionally: in builds
//! without the `enabled` feature the serve tier still offers synthetic
//! root-only trees, so shed/timeout forensics survive `--no-default-features`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::{Event, Sink};

/// Cap on spans captured per request; deeper trees are truncated rather
/// than allocated without bound.
pub const NODE_CAP: usize = 256;

const RECENT_CAP: usize = 256;
const RETAINED_CAP: usize = 64;

/// One span of a captured tree. `parent == 0` marks a root.
#[derive(Clone, Debug)]
pub struct SpanNode {
    pub id: u64,
    pub parent: u64,
    pub name: &'static str,
    pub dur_us: u64,
}

/// A captured span tree with its counter deltas — what a [`TreeSink`]
/// drains and a [`FlightRecorder`] is offered.
#[derive(Clone, Debug, Default)]
pub struct SpanTree {
    pub spans: Vec<SpanNode>,
    /// Counters emitted during the request (cache hits, coalescing
    /// leader links, ...), in emission order.
    pub counts: Vec<(&'static str, u64)>,
    pub truncated: bool,
}

impl SpanTree {
    /// A synthetic single-root tree, for requests whose spans were not
    /// captured (obs compiled out, shed before execution, ...).
    pub fn root(name: &'static str, dur_us: u64) -> SpanTree {
        SpanTree {
            spans: vec![SpanNode {
                id: 1,
                parent: 0,
                name,
                dur_us,
            }],
            counts: Vec::new(),
            truncated: false,
        }
    }
}

/// One request's captured tree plus the retention verdict.
#[derive(Clone, Debug)]
pub struct FlightEntry {
    /// Monotonic capture sequence number (process-local).
    pub seq: u64,
    pub trace_id: u64,
    pub op: &'static str,
    /// Why this entry is interesting: "shed", "timeout", "slow", or
    /// "recent" for entries only in the recent ring.
    pub reason: &'static str,
    pub wall_us: u64,
    pub spans: Vec<SpanNode>,
    /// Counters emitted during the request (cache hits, coalescing
    /// leader links, ...), in emission order.
    pub counts: Vec<(&'static str, u64)>,
    pub truncated: bool,
}

/// Fixed-size dual-ring recorder. All writes take one short mutex; the
/// payloads are small (span vectors are capped) so contention is
/// negligible next to request execution.
pub struct FlightRecorder {
    slow_threshold_us: AtomicU64,
    seq: AtomicU64,
    offered: AtomicU64,
    retained_total: AtomicU64,
    recent: Mutex<VecDeque<FlightEntry>>,
    retained: Mutex<VecDeque<FlightEntry>>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder").finish_non_exhaustive()
    }
}

impl FlightRecorder {
    pub fn new(slow_threshold_us: u64) -> FlightRecorder {
        FlightRecorder {
            slow_threshold_us: AtomicU64::new(slow_threshold_us),
            seq: AtomicU64::new(0),
            offered: AtomicU64::new(0),
            retained_total: AtomicU64::new(0),
            recent: Mutex::new(VecDeque::with_capacity(RECENT_CAP)),
            retained: Mutex::new(VecDeque::with_capacity(RETAINED_CAP)),
        }
    }

    pub fn slow_threshold_us(&self) -> u64 {
        self.slow_threshold_us.load(Ordering::Relaxed)
    }

    /// Offer one request's tree. `forced` pins a tail reason decided by
    /// the caller ("shed", "timeout"); otherwise the entry is retained
    /// iff its wall time crosses the slow threshold.
    pub fn offer(
        &self,
        trace_id: u64,
        op: &'static str,
        wall_us: u64,
        tree: SpanTree,
        forced: Option<&'static str>,
    ) {
        self.offered.fetch_add(1, Ordering::Relaxed);
        let reason = match forced {
            Some(r) => Some(r),
            None if wall_us > self.slow_threshold_us() => Some("slow"),
            None => None,
        };
        let entry = FlightEntry {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            trace_id,
            op,
            reason: reason.unwrap_or("recent"),
            wall_us,
            spans: tree.spans,
            counts: tree.counts,
            truncated: tree.truncated,
        };
        if reason.is_some() {
            self.retained_total.fetch_add(1, Ordering::Relaxed);
            let mut ring = self.retained.lock().unwrap_or_else(|e| e.into_inner());
            if ring.len() == RETAINED_CAP {
                ring.pop_front();
            }
            ring.push_back(entry);
        } else {
            let mut ring = self.recent.lock().unwrap_or_else(|e| e.into_inner());
            if ring.len() == RECENT_CAP {
                ring.pop_front();
            }
            ring.push_back(entry);
        }
    }

    /// (retained, recent), each oldest-first.
    pub fn snapshot(&self) -> (Vec<FlightEntry>, Vec<FlightEntry>) {
        let retained = self
            .retained
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect();
        let recent = self
            .recent
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect();
        (retained, recent)
    }

    /// (offered_total, retained_total, recent_len, retained_len).
    pub fn counts(&self) -> (u64, u64, usize, usize) {
        (
            self.offered.load(Ordering::Relaxed),
            self.retained_total.load(Ordering::Relaxed),
            self.recent.lock().unwrap_or_else(|e| e.into_inner()).len(),
            self.retained
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len(),
        )
    }
}

#[derive(Default)]
struct TreeInner {
    tree: SpanTree,
}

/// A [`Sink`] that rebuilds the span tree of one request in memory so it
/// can be offered to the [`FlightRecorder`] after the request finishes.
pub struct TreeSink {
    inner: Mutex<TreeInner>,
}

impl TreeSink {
    pub fn new() -> TreeSink {
        TreeSink {
            inner: Mutex::new(TreeInner::default()),
        }
    }

    /// Drain the captured tree.
    pub fn take(&self) -> SpanTree {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        std::mem::take(&mut inner.tree)
    }
}

impl Default for TreeSink {
    fn default() -> TreeSink {
        TreeSink::new()
    }
}

impl Sink for TreeSink {
    fn event(&self, ev: &Event) {
        let inner = &mut self.inner.lock().unwrap_or_else(|e| e.into_inner()).tree;
        match ev {
            Event::Enter {
                id, parent, name, ..
            } => {
                if inner.spans.len() < NODE_CAP {
                    inner.spans.push(SpanNode {
                        id: *id,
                        parent: *parent,
                        name,
                        dur_us: 0,
                    });
                } else {
                    inner.truncated = true;
                }
            }
            Event::Exit { id, dur_ns, .. } => {
                // Exits arrive innermost-first; search from the back.
                if let Some(node) = inner.spans.iter_mut().rev().find(|n| n.id == *id) {
                    node.dur_us = dur_ns / 1_000;
                }
            }
            Event::Count { name, delta, .. } => {
                if inner.counts.len() < NODE_CAP {
                    inner.counts.push((name, *delta));
                } else {
                    inner.truncated = true;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_retention_keeps_forced_and_slow() {
        let fr = FlightRecorder::new(1_000);
        fr.offer(
            1,
            "serve.contains",
            50,
            SpanTree::root("serve.contains", 50),
            None,
        );
        fr.offer(
            2,
            "serve.contains",
            5_000,
            SpanTree::root("serve.contains", 5_000),
            None,
        );
        fr.offer(
            3,
            "serve.evaluate",
            10,
            SpanTree::root("serve.evaluate", 10),
            Some("timeout"),
        );
        fr.offer(4, "serve.contains", 0, SpanTree::default(), Some("shed"));
        let (retained, recent) = fr.snapshot();
        assert_eq!(recent.len(), 1);
        assert_eq!(recent[0].reason, "recent");
        let reasons: Vec<_> = retained.iter().map(|e| e.reason).collect();
        assert_eq!(reasons, ["slow", "timeout", "shed"]);
        let (offered, retained_total, _, _) = fr.counts();
        assert_eq!((offered, retained_total), (4, 3));
    }

    #[test]
    fn rings_are_bounded() {
        let fr = FlightRecorder::new(u64::MAX);
        for i in 0..(RECENT_CAP as u64 + 10) {
            fr.offer(i, "serve.contains", 1, SpanTree::default(), None);
        }
        for i in 0..(RETAINED_CAP as u64 + 10) {
            fr.offer(i, "serve.contains", 1, SpanTree::default(), Some("shed"));
        }
        let (retained, recent) = fr.snapshot();
        assert_eq!(recent.len(), RECENT_CAP);
        assert_eq!(retained.len(), RETAINED_CAP);
        // Oldest entries were evicted.
        assert_eq!(recent[0].trace_id, 10);
        assert_eq!(retained[0].trace_id, 10);
    }

    #[test]
    fn tree_sink_rebuilds_durations_and_counts() {
        let sink = TreeSink::new();
        sink.event(&Event::Enter {
            id: 1,
            parent: 0,
            name: "outer",
            trace: 7,
        });
        sink.event(&Event::Enter {
            id: 2,
            parent: 1,
            name: "inner",
            trace: 7,
        });
        sink.event(&Event::Count {
            name: "hits",
            delta: 3,
            trace: 7,
        });
        sink.event(&Event::Exit {
            id: 2,
            name: "inner",
            dur_ns: 5_000,
            trace: 7,
        });
        sink.event(&Event::Exit {
            id: 1,
            name: "outer",
            dur_ns: 9_000,
            trace: 7,
        });
        let tree = sink.take();
        assert!(!tree.truncated);
        assert_eq!(tree.spans.len(), 2);
        assert_eq!((tree.spans[0].name, tree.spans[0].dur_us), ("outer", 9));
        assert_eq!(
            (
                tree.spans[1].name,
                tree.spans[1].parent,
                tree.spans[1].dur_us
            ),
            ("inner", 1, 5)
        );
        assert_eq!(tree.counts, [("hits", 3)]);
    }
}
