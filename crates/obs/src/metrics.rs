//! Live metrics: striped lock-free counters, gauges, log-bucket
//! histograms, rolling latency windows, and Prometheus text exposition.
//!
//! Unlike the event-driven half of this crate (spans and sinks, which are
//! compiled to no-ops without the `enabled` feature), everything here is
//! unconditional: the serve tier populates the registry directly on its
//! request path, so a `--no-default-features` build still answers scrapes.
//! All hot-path operations are wait-free atomics; the only locks are
//! per-slot mutexes on the rolling window, touched once per request.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use crate::BUCKETS;

/// Upper bound (inclusive, in microseconds) of log bucket `k`.
/// Bucket 0 holds sub-microsecond samples; bucket `k >= 1` holds
/// `[2^(k-1), 2^k)` microseconds, matching `Aggregator`'s scheme.
pub fn bucket_upper_us(k: usize) -> u64 {
    if k == 0 {
        0
    } else {
        (1u64 << k.min(62)) - 1
    }
}

/// Log-bucket index for a duration in microseconds (shared with
/// `Aggregator::record`).
pub fn bucket_of_us(us: u64) -> usize {
    ((u64::BITS - us.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Estimate the `p`-quantile (0.0..=1.0) of a log-bucket histogram in
/// microseconds, using log-linear interpolation inside the matched
/// bucket: the target rank's fractional position `f` within bucket `k`
/// maps to `2^((k-1)+f)` us, so a lone sample lands at the bucket's
/// geometric midpoint instead of its upper bound. Returns 0 when the
/// histogram is empty.
pub fn histogram_quantile_us(buckets: &[u64], count: u64, p: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let target = ((count as f64) * p).ceil().max(1.0) as u64;
    let mut cum = 0u64;
    for (k, &c) in buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if cum + c >= target {
            if k == 0 {
                return 0;
            }
            let f = ((target as f64 - 0.5) - cum as f64) / c as f64;
            let f = f.clamp(0.0, 1.0);
            return 2f64.powf((k as f64 - 1.0) + f).round() as u64;
        }
        cum += c;
    }
    bucket_upper_us(BUCKETS - 1)
}

const STRIPES: usize = 16;

#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static MY_STRIPE: usize = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % STRIPES;
}

/// Monotonic counter striped across cache lines so concurrent worker
/// threads do not contend on one atomic. Reads fold the stripes.
#[derive(Default)]
pub struct Counter {
    stripes: [PaddedU64; STRIPES],
}

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    pub fn add(&self, delta: u64) {
        MY_STRIPE.with(|&s| self.stripes[s].0.fetch_add(delta, Ordering::Relaxed));
    }

    pub fn get(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// Last-writer-wins integer gauge.
#[derive(Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub fn new() -> Gauge {
        Gauge::default()
    }

    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Wait-free log-bucket histogram over microsecond durations.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    pub fn observe(&self, us: u64) {
        self.buckets[bucket_of_us(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> ([u64; BUCKETS], u64, u64) {
        let buckets = std::array::from_fn(|k| self.buckets[k].load(Ordering::Relaxed));
        (
            buckets,
            self.count.load(Ordering::Relaxed),
            self.sum_us.load(Ordering::Relaxed),
        )
    }
}

/// Seconds per rolling-window slot and slot count: six ten-second slots
/// give p50/p99 and SLO-burn gauges over roughly the last minute.
const SLOT_SECS: u64 = 10;
const WINDOW_SLOTS: usize = 6;

#[derive(Clone, Copy)]
struct WindowSlot {
    stamp: u64,
    buckets: [u64; BUCKETS],
    count: u64,
    shed: u64,
    timeouts: u64,
}

impl WindowSlot {
    fn empty(stamp: u64) -> WindowSlot {
        WindowSlot {
            stamp,
            buckets: [0; BUCKETS],
            count: 0,
            shed: 0,
            timeouts: 0,
        }
    }
}

/// Merged view of the live slots of a [`RollingWindow`].
#[derive(Clone, Copy)]
pub struct WindowSnapshot {
    pub buckets: [u64; BUCKETS],
    pub count: u64,
    pub shed: u64,
    pub timeouts: u64,
}

impl Default for WindowSnapshot {
    fn default() -> WindowSnapshot {
        WindowSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            shed: 0,
            timeouts: 0,
        }
    }
}

impl WindowSnapshot {
    pub fn percentile_us(&self, p: f64) -> u64 {
        histogram_quantile_us(&self.buckets, self.count, p)
    }
}

/// Ring of time-sliced latency slots; expired slots are recycled lazily
/// on write or read, so the window needs no background sweeper.
pub struct RollingWindow {
    start: Instant,
    slots: [Mutex<WindowSlot>; WINDOW_SLOTS],
}

impl Default for RollingWindow {
    fn default() -> RollingWindow {
        RollingWindow {
            start: Instant::now(),
            slots: std::array::from_fn(|_| Mutex::new(WindowSlot::empty(0))),
        }
    }
}

impl RollingWindow {
    pub fn new() -> RollingWindow {
        RollingWindow::default()
    }

    fn epoch(&self) -> u64 {
        self.start.elapsed().as_secs() / SLOT_SECS + 1
    }

    fn slot(&self, epoch: u64) -> std::sync::MutexGuard<'_, WindowSlot> {
        let mut slot = self.slots[(epoch as usize) % WINDOW_SLOTS]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if slot.stamp != epoch {
            *slot = WindowSlot::empty(epoch);
        }
        slot
    }

    pub fn observe(&self, dur_us: u64, timed_out: bool) {
        let mut slot = self.slot(self.epoch());
        slot.buckets[bucket_of_us(dur_us)] += 1;
        slot.count += 1;
        if timed_out {
            slot.timeouts += 1;
        }
    }

    pub fn mark_shed(&self) {
        self.slot(self.epoch()).shed += 1;
    }

    pub fn snapshot(&self) -> WindowSnapshot {
        let now = self.epoch();
        let mut snap = WindowSnapshot::default();
        for m in &self.slots {
            let slot = m.lock().unwrap_or_else(|e| e.into_inner());
            if slot.stamp == 0 || slot.stamp + (WINDOW_SLOTS as u64) <= now {
                continue;
            }
            for (acc, b) in snap.buckets.iter_mut().zip(slot.buckets.iter()) {
                *acc += b;
            }
            snap.count += slot.count;
            snap.shed += slot.shed;
            snap.timeouts += slot.timeouts;
        }
        snap
    }
}

struct OpStats {
    total: Counter,
    timeouts: Counter,
    latency: Histogram,
    window: RollingWindow,
}

impl OpStats {
    fn new() -> OpStats {
        OpStats {
            total: Counter::new(),
            timeouts: Counter::new(),
            latency: Histogram::new(),
            window: RollingWindow::new(),
        }
    }
}

/// Cap on distinct per-op series; overflow collapses into `"other"` so a
/// hostile or buggy caller cannot grow the scrape without bound.
pub const MAX_OP_SERIES: usize = 32;

/// Bounded-label registry for the serve tier's per-request metrics.
/// Op labels are `&'static str` (the engine's fixed op taxonomy), so
/// the label space is closed; the cap is a second line of defence.
pub struct MetricsRegistry {
    started: Instant,
    ops: RwLock<BTreeMap<&'static str, Arc<OpStats>>>,
    shed_total: Counter,
    shed_window: RollingWindow,
    series_dropped: Counter,
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry {
            started: Instant::now(),
            ops: RwLock::new(BTreeMap::new()),
            shed_total: Counter::new(),
            shed_window: RollingWindow::new(),
            series_dropped: Counter::new(),
        }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry").finish_non_exhaustive()
    }
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn op_stats(&self, op: &'static str) -> Arc<OpStats> {
        if let Some(s) = self.ops.read().unwrap_or_else(|e| e.into_inner()).get(op) {
            return Arc::clone(s);
        }
        let mut ops = self.ops.write().unwrap_or_else(|e| e.into_inner());
        if ops.len() >= MAX_OP_SERIES && !ops.contains_key(op) {
            self.series_dropped.add(1);
            return Arc::clone(
                ops.entry("other")
                    .or_insert_with(|| Arc::new(OpStats::new())),
            );
        }
        Arc::clone(ops.entry(op).or_insert_with(|| Arc::new(OpStats::new())))
    }

    /// Record one completed request of family `op`.
    pub fn observe_op(&self, op: &'static str, dur_us: u64, timed_out: bool) {
        let stats = self.op_stats(op);
        stats.total.add(1);
        if timed_out {
            stats.timeouts.add(1);
        }
        stats.latency.observe(dur_us);
        stats.window.observe(dur_us, timed_out);
    }

    /// Record one request refused by admission control (it never ran, so
    /// there is no latency to observe).
    pub fn mark_shed(&self) {
        self.shed_total.add(1);
        self.shed_window.mark_shed();
    }

    pub fn shed_total(&self) -> u64 {
        self.shed_total.get()
    }

    /// Shed SLO burn over the rolling window: refused / offered.
    pub fn shed_burn_ratio(&self) -> f64 {
        let shed = self.shed_window.snapshot().shed;
        let mut served = 0u64;
        for stats in self.ops.read().unwrap_or_else(|e| e.into_inner()).values() {
            served += stats.window.snapshot().count;
        }
        if shed == 0 {
            return 0.0;
        }
        shed as f64 / (shed + served) as f64
    }

    /// Render the registry's half of the scrape: request totals, timeout
    /// totals, full-history latency histograms, rolling-window p50/p99
    /// gauges, and shed / SLO-burn series.
    pub fn samples(&self) -> Vec<Sample> {
        let mut out = Vec::new();
        let ops = self.ops.read().unwrap_or_else(|e| e.into_inner());
        let mut window_count = 0u64;
        let mut window_timeouts = 0u64;
        for (op, stats) in ops.iter() {
            let labels = vec![("op", (*op).to_owned())];
            out.push(Sample {
                name: "omq_requests_total",
                help: "Requests executed by the engine, by op family.",
                labels: labels.clone(),
                value: Value::Counter(stats.total.get()),
            });
            let timeouts = stats.timeouts.get();
            if timeouts > 0 {
                out.push(Sample {
                    name: "omq_request_timeouts_total",
                    help: "Requests that exhausted their deadline ladder.",
                    labels: labels.clone(),
                    value: Value::Counter(timeouts),
                });
            }
            let (buckets, count, sum_us) = stats.latency.snapshot();
            out.push(Sample {
                name: "omq_request_duration_us",
                help: "Request wall time in microseconds, log-bucketed.",
                labels: labels.clone(),
                value: Value::Histogram {
                    buckets: buckets.to_vec(),
                    count,
                    sum_us,
                },
            });
            let win = stats.window.snapshot();
            window_count += win.count;
            window_timeouts += win.timeouts;
            if win.count > 0 {
                for (q, p) in [("0.5", 0.5), ("0.99", 0.99)] {
                    out.push(Sample {
                        name: "omq_request_duration_window_us",
                        help: "Rolling-window request latency quantiles (us).",
                        labels: vec![("op", (*op).to_owned()), ("quantile", q.to_owned())],
                        value: Value::Gauge(win.percentile_us(p) as f64),
                    });
                }
            }
        }
        drop(ops);
        out.push(Sample {
            name: "omq_requests_shed_total",
            help: "Requests refused by admission control before execution.",
            labels: Vec::new(),
            value: Value::Counter(self.shed_total.get()),
        });
        let shed_win = self.shed_window.snapshot().shed;
        let offered = shed_win + window_count;
        let shed_burn = if offered == 0 {
            0.0
        } else {
            shed_win as f64 / offered as f64
        };
        let timeout_burn = if window_count == 0 {
            0.0
        } else {
            window_timeouts as f64 / window_count as f64
        };
        out.push(Sample {
            name: "omq_shed_slo_burn_ratio",
            help: "Rolling-window fraction of offered requests that were shed.",
            labels: Vec::new(),
            value: Value::Gauge(shed_burn),
        });
        out.push(Sample {
            name: "omq_timeout_slo_burn_ratio",
            help: "Rolling-window fraction of executed requests that timed out.",
            labels: Vec::new(),
            value: Value::Gauge(timeout_burn),
        });
        out.push(Sample {
            name: "omq_metric_series_dropped_total",
            help: "Op series collapsed into \"other\" by the label bound.",
            labels: Vec::new(),
            value: Value::Counter(self.series_dropped.get()),
        });
        out.push(Sample {
            name: "omq_uptime_seconds",
            help: "Seconds since the metrics registry was created.",
            labels: Vec::new(),
            value: Value::Gauge(self.started.elapsed().as_secs() as f64),
        });
        out
    }
}

/// One scrape-time measurement. Producers hand these to
/// [`render_prometheus`], which merges duplicate series (same name and
/// label set) so per-shard contributions fold into one process view.
#[derive(Clone, Debug)]
pub struct Sample {
    pub name: &'static str,
    pub help: &'static str,
    pub labels: Vec<(&'static str, String)>,
    pub value: Value,
}

#[derive(Clone, Debug)]
pub enum Value {
    Counter(u64),
    Gauge(f64),
    Histogram {
        buckets: Vec<u64>,
        count: u64,
        sum_us: u64,
    },
}

impl Value {
    fn type_str(&self) -> &'static str {
        match self {
            Value::Counter(_) => "counter",
            Value::Gauge(_) => "gauge",
            Value::Histogram { .. } => "histogram",
        }
    }

    fn merge(&mut self, other: &Value) {
        match (self, other) {
            (Value::Counter(a), Value::Counter(b)) => *a += b,
            (Value::Gauge(a), Value::Gauge(b)) => *a += b,
            (
                Value::Histogram {
                    buckets: a,
                    count: ac,
                    sum_us: asum,
                },
                Value::Histogram {
                    buckets: b,
                    count: bc,
                    sum_us: bsum,
                },
            ) => {
                if a.len() < b.len() {
                    a.resize(b.len(), 0);
                }
                for (x, y) in a.iter_mut().zip(b.iter()) {
                    *x += y;
                }
                *ac += bc;
                *asum += bsum;
            }
            // Mismatched types for one series is a producer bug; keep the
            // first value rather than corrupting the scrape.
            _ => {}
        }
    }
}

fn label_str(labels: &[(&'static str, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut s = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(k);
        s.push_str("=\"");
        for c in v.chars() {
            match c {
                '"' => s.push_str("\\\""),
                '\\' => s.push_str("\\\\"),
                '\n' => s.push_str("\\n"),
                c => s.push(c),
            }
        }
        s.push('"');
    }
    s.push('}');
    s
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.6}")
    }
}

/// Render Prometheus text exposition (format 0.0.4). Series are sorted
/// by (name, labels) and duplicates are merged, so output is
/// deterministic regardless of producer order, and repeated scrapes of
/// an idle server are byte-identical modulo gauge values.
pub fn render_prometheus(samples: &[Sample]) -> String {
    let mut merged: BTreeMap<(&'static str, String), Sample> = BTreeMap::new();
    for s in samples {
        let key = (s.name, label_str(&s.labels));
        match merged.get_mut(&key) {
            Some(existing) => existing.value.merge(&s.value),
            None => {
                merged.insert(key, s.clone());
            }
        }
    }
    let mut out = String::new();
    let mut last_name = "";
    for ((name, labels), s) in &merged {
        if *name != last_name {
            out.push_str("# HELP ");
            out.push_str(name);
            out.push(' ');
            out.push_str(s.help);
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push(' ');
            out.push_str(s.value.type_str());
            out.push('\n');
            last_name = name;
        }
        match &s.value {
            Value::Counter(v) => {
                out.push_str(name);
                out.push_str(labels);
                out.push(' ');
                out.push_str(&v.to_string());
                out.push('\n');
            }
            Value::Gauge(v) => {
                out.push_str(name);
                out.push_str(labels);
                out.push(' ');
                out.push_str(&fmt_f64(*v));
                out.push('\n');
            }
            Value::Histogram {
                buckets,
                count,
                sum_us,
            } => {
                let inner = labels.trim_start_matches('{').trim_end_matches('}');
                let top = buckets
                    .iter()
                    .rposition(|&c| c > 0)
                    .map(|k| k + 1)
                    .unwrap_or(0);
                let mut cum = 0u64;
                for (k, c) in buckets.iter().take(top).enumerate() {
                    cum += c;
                    out.push_str(name);
                    out.push_str("_bucket{");
                    if !inner.is_empty() {
                        out.push_str(inner);
                        out.push(',');
                    }
                    out.push_str("le=\"");
                    out.push_str(&bucket_upper_us(k).to_string());
                    out.push_str("\"} ");
                    out.push_str(&cum.to_string());
                    out.push('\n');
                }
                out.push_str(name);
                out.push_str("_bucket{");
                if !inner.is_empty() {
                    out.push_str(inner);
                    out.push(',');
                }
                out.push_str("le=\"+Inf\"} ");
                out.push_str(&count.to_string());
                out.push('\n');
                out.push_str(name);
                out.push_str("_sum");
                out.push_str(labels);
                out.push(' ');
                out.push_str(&sum_us.to_string());
                out.push('\n');
                out.push_str(name);
                out.push_str("_count");
                out.push_str(labels);
                out.push(' ');
                out.push_str(&count.to_string());
                out.push('\n');
            }
        }
    }
    out
}

/// Content-Type for the text exposition format served over HTTP.
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn striped_counter_sums_across_threads() {
        let c = Arc::new(Counter::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.add(1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn quantile_interpolates_within_bucket() {
        // Empty histogram.
        assert_eq!(histogram_quantile_us(&[0; BUCKETS], 0, 0.5), 0);
        // A single sample in bucket 7 ([64, 128) us) lands near the
        // geometric midpoint, strictly inside the bucket.
        let mut b = [0u64; BUCKETS];
        b[7] = 1;
        let q = histogram_quantile_us(&b, 1, 0.5);
        assert!((64..128).contains(&q), "q={q}");
        // Two samples spread across buckets: the p99 must sit in the
        // upper bucket and above the p50.
        let mut b = [0u64; BUCKETS];
        b[2] = 1; // 2us
        b[10] = 1; // ~1000us
        let p50 = histogram_quantile_us(&b, 2, 0.5);
        let p99 = histogram_quantile_us(&b, 2, 0.99);
        assert!((2..4).contains(&p50), "p50={p50}");
        assert!((512..1024).contains(&p99), "p99={p99}");
        assert!(p50 < p99);
    }

    #[test]
    fn registry_tracks_ops_shed_and_burn() {
        let reg = MetricsRegistry::new();
        reg.observe_op("serve.contains", 120, false);
        reg.observe_op("serve.contains", 8000, true);
        reg.observe_op("serve.evaluate", 40, false);
        reg.mark_shed();
        assert_eq!(reg.shed_total(), 1);
        let burn = reg.shed_burn_ratio();
        assert!(burn > 0.0 && burn < 1.0, "burn={burn}");
        let text = render_prometheus(&reg.samples());
        assert!(text.contains("omq_requests_total{op=\"serve.contains\"} 2"));
        assert!(text.contains("omq_requests_total{op=\"serve.evaluate\"} 1"));
        assert!(text.contains("omq_request_timeouts_total{op=\"serve.contains\"} 1"));
        assert!(text.contains("omq_requests_shed_total 1"));
        assert!(text.contains("omq_shed_slo_burn_ratio 0.25"));
        assert!(text.contains("# TYPE omq_request_duration_us histogram"));
        assert!(text.contains("omq_request_duration_us_count{op=\"serve.contains\"} 2"));
        assert!(text.contains("quantile=\"0.99\""));
    }

    #[test]
    fn label_bound_collapses_overflow_into_other() {
        let reg = MetricsRegistry::new();
        const NAMES: [&str; 40] = [
            "op00", "op01", "op02", "op03", "op04", "op05", "op06", "op07", "op08", "op09", "op10",
            "op11", "op12", "op13", "op14", "op15", "op16", "op17", "op18", "op19", "op20", "op21",
            "op22", "op23", "op24", "op25", "op26", "op27", "op28", "op29", "op30", "op31", "op32",
            "op33", "op34", "op35", "op36", "op37", "op38", "op39",
        ];
        for name in NAMES {
            reg.observe_op(name, 10, false);
        }
        let text = render_prometheus(&reg.samples());
        assert!(text.contains("omq_requests_total{op=\"other\"}"));
        assert!(text.contains("omq_metric_series_dropped_total"));
        assert!(!text.contains("op=\"op39\""));
    }

    #[test]
    fn render_merges_duplicate_series() {
        let mk = |v| Sample {
            name: "omq_cache_hits_total",
            help: "h",
            labels: vec![("cache", "rewrite".to_owned())],
            value: Value::Counter(v),
        };
        let text = render_prometheus(&[mk(3), mk(4)]);
        assert!(text.contains("omq_cache_hits_total{cache=\"rewrite\"} 7"));
        assert_eq!(text.matches("# TYPE omq_cache_hits_total").count(), 1);
    }

    #[test]
    fn rolling_window_counts_and_quantiles() {
        let w = RollingWindow::new();
        for _ in 0..10 {
            w.observe(100, false);
        }
        w.observe(9000, true);
        w.mark_shed();
        let snap = w.snapshot();
        assert_eq!(snap.count, 11);
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.timeouts, 1);
        assert!((64..256).contains(&snap.percentile_us(0.5)));
        assert!(snap.percentile_us(0.99) >= 4096);
    }
}
