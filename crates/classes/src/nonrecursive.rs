//! Non-recursive sets of tgds (paper §2 "Non-recursiveness", Def. 3,
//! Lemma 32): acyclicity of the predicate graph, equivalently
//! stratifiability.

use std::collections::HashMap;

use omq_model::{PredId, Tgd};

/// The predicate graph of `Σ`: an edge `R → P` whenever some tgd has `R` in
/// its body and `P` in its head. Returned as an adjacency map.
pub fn predicate_graph(sigma: &[Tgd]) -> HashMap<PredId, Vec<PredId>> {
    let mut g: HashMap<PredId, Vec<PredId>> = HashMap::new();
    for t in sigma {
        for b in &t.body {
            for h in &t.head {
                let entry = g.entry(b.pred).or_default();
                if !entry.contains(&h.pred) {
                    entry.push(h.pred);
                }
            }
        }
        for a in t.body.iter().chain(&t.head) {
            g.entry(a.pred).or_default();
        }
    }
    g
}

/// Is `Σ` non-recursive, i.e. is its predicate graph acyclic (class `NR`)?
pub fn is_non_recursive(sigma: &[Tgd]) -> bool {
    stratum_of_preds(sigma).is_some()
}

/// Assigns each predicate its *stratum*: the length of the longest path
/// reaching it in the predicate graph. Returns `None` on a cycle.
fn stratum_of_preds(sigma: &[Tgd]) -> Option<HashMap<PredId, usize>> {
    let g = predicate_graph(sigma);
    // Longest-path layering via DFS with cycle detection.
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Gray,
        Black,
    }
    let mut mark: HashMap<PredId, Mark> = g.keys().map(|&p| (p, Mark::White)).collect();
    let mut depth: HashMap<PredId, usize> = HashMap::new();

    fn visit(
        p: PredId,
        g: &HashMap<PredId, Vec<PredId>>,
        mark: &mut HashMap<PredId, Mark>,
        depth: &mut HashMap<PredId, usize>,
    ) -> bool {
        match mark[&p] {
            Mark::Gray => return false, // cycle
            Mark::Black => return true,
            Mark::White => {}
        }
        mark.insert(p, Mark::Gray);
        let mut d = 0usize;
        for &succ in &g[&p] {
            if !visit(succ, g, mark, depth) {
                return false;
            }
            d = d.max(depth[&succ] + 1);
        }
        mark.insert(p, Mark::Black);
        // Depth counts from the sinks; invert below.
        depth.insert(p, d);
        true
    }

    let preds: Vec<PredId> = g.keys().copied().collect();
    for p in preds {
        if !visit(p, &g, &mut mark, &mut depth) {
            return None;
        }
    }
    // Convert "height above sinks" into "stratum from the sources": predicates
    // with the greatest height are the lowest strata. Def. 3 only needs a
    // consistent µ with body-strata < head-strata, which inverted height
    // provides.
    let maxh = depth.values().copied().max().unwrap_or(0);
    Some(depth.into_iter().map(|(p, h)| (p, maxh - h)).collect())
}

/// Computes a stratification `{Σ₁, …, Σₙ}` of `Σ` (Def. 3 / Lemma 32): a
/// partition of the tgds, returned bottom-up as lists of tgd indices, such
/// that whenever a tgd produces a predicate consumed by another, the producer
/// lies in a strictly earlier stratum. Returns `None` when `Σ` is recursive.
///
/// This is the layering used by the stratified chase: processing strata in
/// order and saturating each one visits every derivable atom exactly once.
pub fn stratify(sigma: &[Tgd]) -> Option<Vec<Vec<usize>>> {
    stratum_of_preds(sigma)?;
    // Tgd-dependency graph: i → j when a head predicate of i is a body
    // predicate of j. Acyclic iff the predicate graph is (each tgd edge
    // corresponds to a predicate-graph edge and vice versa).
    let n = sigma.len();
    let mut level = vec![0usize; n];
    // Longest-path layering by simple relaxation; at most n rounds since the
    // graph is acyclic (checked above).
    for _ in 0..n {
        let mut changed = false;
        for i in 0..n {
            for j in 0..n {
                let feeds = sigma[i]
                    .head
                    .iter()
                    .any(|h| sigma[j].body.iter().any(|b| b.pred == h.pred));
                if feeds && level[j] <= level[i] {
                    level[j] = level[i] + 1;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    let max = level.iter().copied().max().unwrap_or(0);
    let mut strata: Vec<Vec<usize>> = vec![Vec::new(); max + 1];
    for (i, &l) in level.iter().enumerate() {
        strata[l].push(i);
    }
    strata.retain(|s| !s.is_empty());
    Some(strata)
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_model::{parse_tgd, Vocabulary};

    #[test]
    fn acyclic_layers() {
        let mut voc = Vocabulary::new();
        let sigma = vec![
            parse_tgd(&mut voc, "A(X) -> B(X)").unwrap(),
            parse_tgd(&mut voc, "B(X) -> exists Y . C(X,Y)").unwrap(),
            parse_tgd(&mut voc, "C(X,Y) -> D(Y)").unwrap(),
        ];
        assert!(is_non_recursive(&sigma));
        let strata = stratify(&sigma).unwrap();
        assert_eq!(strata.len(), 3);
        // Bottom-up order: A->B first, then B->C, then C->D.
        assert_eq!(strata[0], vec![0]);
        assert_eq!(strata[1], vec![1]);
        assert_eq!(strata[2], vec![2]);
    }

    #[test]
    fn direct_recursion_detected() {
        let mut voc = Vocabulary::new();
        let sigma = vec![parse_tgd(&mut voc, "P(X) -> exists Y . P(Y)").unwrap()];
        assert!(!is_non_recursive(&sigma));
        assert!(stratify(&sigma).is_none());
    }

    #[test]
    fn mutual_recursion_detected() {
        let mut voc = Vocabulary::new();
        let sigma = vec![
            parse_tgd(&mut voc, "A(X) -> B(X)").unwrap(),
            parse_tgd(&mut voc, "B(X) -> A(X)").unwrap(),
        ];
        assert!(!is_non_recursive(&sigma));
    }

    #[test]
    fn diamond_is_acyclic() {
        let mut voc = Vocabulary::new();
        let sigma = vec![
            parse_tgd(&mut voc, "A(X) -> B(X)").unwrap(),
            parse_tgd(&mut voc, "A(X) -> C(X)").unwrap(),
            parse_tgd(&mut voc, "B(X), C(X) -> D(X)").unwrap(),
        ];
        assert!(is_non_recursive(&sigma));
        let strata = stratify(&sigma).unwrap();
        assert_eq!(strata.len(), 2);
        assert_eq!(strata[0].len(), 2);
    }

    #[test]
    fn fact_tgds_allowed() {
        let mut voc = Vocabulary::new();
        let sigma = vec![
            parse_tgd(&mut voc, "true -> Bit(0), Bit(1)").unwrap(),
            parse_tgd(&mut voc, "Bit(X) -> Num(X)").unwrap(),
        ];
        assert!(is_non_recursive(&sigma));
        let strata = stratify(&sigma).unwrap();
        assert_eq!(strata.len(), 2);
    }

    #[test]
    fn predicate_graph_edges() {
        let mut voc = Vocabulary::new();
        let sigma = vec![parse_tgd(&mut voc, "A(X), B(X) -> C(X), D(X)").unwrap()];
        let g = predicate_graph(&sigma);
        let a = voc.pred_id("A").unwrap();
        let c = voc.pred_id("C").unwrap();
        let d = voc.pred_id("D").unwrap();
        assert!(g[&a].contains(&c) && g[&a].contains(&d));
        assert_eq!(g.len(), 4);
    }
}
