//! Weak acyclicity (Fagin et al., data exchange), mentioned in §3.1: the
//! "weak" relaxations of the paper's classes extend full tgds and therefore
//! have an undecidable containment problem (Prop. 8). We implement the
//! recognizer so the library can warn about such sets.

use std::collections::{HashMap, HashSet};

use omq_model::{PredId, Term, Tgd};

/// A position `P[i]` of a predicate.
type Position = (PredId, usize);

/// Is `Σ` weakly acyclic?
///
/// Build the position graph: for each tgd and each body variable `x` at
/// position `π` that also occurs in the head, add a *normal* edge from `π`
/// to every head position of `x`, and a *special* edge from `π` to every
/// head position of every existential variable of that tgd. `Σ` is weakly
/// acyclic iff no cycle goes through a special edge.
pub fn is_weakly_acyclic(sigma: &[Tgd]) -> bool {
    let mut normal: HashMap<Position, HashSet<Position>> = HashMap::new();
    let mut special: HashMap<Position, HashSet<Position>> = HashMap::new();
    let mut positions: HashSet<Position> = HashSet::new();

    for t in sigma {
        let existentials = t.existential_vars();
        for b in &t.body {
            for (i, &arg) in b.args.iter().enumerate() {
                let Term::Var(x) = arg else { continue };
                let from = (b.pred, i);
                positions.insert(from);
                for h in &t.head {
                    for (j, &harg) in h.args.iter().enumerate() {
                        let to = (h.pred, j);
                        positions.insert(to);
                        match harg {
                            Term::Var(y) if y == x => {
                                normal.entry(from).or_default().insert(to);
                            }
                            Term::Var(y) if existentials.contains(&y) => {
                                special.entry(from).or_default().insert(to);
                            }
                            _ => {}
                        }
                    }
                }
            }
        }
    }

    // A cycle through a special edge exists iff some special edge (u, v) has
    // a path from v back to u in the combined graph.
    let succ = |p: Position| -> Vec<Position> {
        let mut out = Vec::new();
        if let Some(s) = normal.get(&p) {
            out.extend(s.iter().copied());
        }
        if let Some(s) = special.get(&p) {
            out.extend(s.iter().copied());
        }
        out
    };
    for (&u, targets) in &special {
        for &v in targets {
            // BFS from v looking for u.
            let mut seen = HashSet::new();
            let mut stack = vec![v];
            while let Some(p) = stack.pop() {
                if p == u {
                    return false;
                }
                if seen.insert(p) {
                    stack.extend(succ(p));
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_model::{parse_tgd, Vocabulary};

    #[test]
    fn full_tgds_are_weakly_acyclic() {
        let mut voc = Vocabulary::new();
        let sigma = vec![parse_tgd(&mut voc, "T(X,Y), T(Y,Z) -> T(X,Z)").unwrap()];
        assert!(is_weakly_acyclic(&sigma));
    }

    #[test]
    fn self_feeding_existential_cycle() {
        let mut voc = Vocabulary::new();
        // P[1] --special--> P[1]: not weakly acyclic.
        let sigma = vec![parse_tgd(&mut voc, "P(X) -> exists Y . P(Y)").unwrap()];
        assert!(!is_weakly_acyclic(&sigma));
    }

    #[test]
    fn employee_manager_example() {
        let mut voc = Vocabulary::new();
        // Classic weakly-acyclic example: every employee has a manager who
        // is an employee — cycle through a special edge.
        let sigma = vec![
            parse_tgd(&mut voc, "Emp(X) -> exists Y . Mgr(X,Y)").unwrap(),
            parse_tgd(&mut voc, "Mgr(X,Y) -> Emp(Y)").unwrap(),
        ];
        assert!(!is_weakly_acyclic(&sigma));
    }

    #[test]
    fn terminating_existential_chain() {
        let mut voc = Vocabulary::new();
        let sigma = vec![
            parse_tgd(&mut voc, "A(X) -> exists Y . B(X,Y)").unwrap(),
            parse_tgd(&mut voc, "B(X,Y) -> C(Y)").unwrap(),
        ];
        assert!(is_weakly_acyclic(&sigma));
    }
}
