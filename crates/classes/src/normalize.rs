//! Head normalization: rewriting every tgd into *normal form* with a single
//! head atom, as assumed w.l.o.g. throughout §5 of the paper and by the
//! XRewrite algorithm.
//!
//! A tgd `φ(x̄,ȳ) → ∃z̄ (α₁ ∧ … ∧ αₖ)` with `k > 1` becomes
//!
//! ```text
//! φ(x̄,ȳ) → ∃z̄ Auxτ(x̄,z̄)
//! Auxτ(x̄,z̄) → αᵢ          (for each i)
//! ```
//!
//! where `Auxτ` is a fresh predicate collecting all head variables (and the
//! constants of the head are pushed into the `αᵢ`-rules unchanged). The
//! transformation preserves certain answers over the original schema and
//! keeps every class of the paper: the `Auxτ`-atom guards its rule (G), the
//! new bodies are single atoms (L), the fresh predicate sits between the old
//! strata (NR), and the head of the first rule keeps every body variable
//! that was kept before while the unfolding rules are lossless (S).

use omq_model::{Atom, Term, Tgd, Vocabulary};

/// Rewrites `Σ` so that every tgd has exactly one head atom.
///
/// Fresh auxiliary predicates are interned in `voc` with names starting with
/// `_aux`. Tgds already in normal form are passed through unchanged.
pub fn normalize_heads(voc: &mut Vocabulary, sigma: &[Tgd]) -> Vec<Tgd> {
    let mut out = Vec::with_capacity(sigma.len());
    for t in sigma {
        if t.head.len() == 1 {
            out.push(t.clone());
            continue;
        }
        let head_vars = t.head_vars();
        let aux = voc.fresh_pred("_aux", head_vars.len());
        let aux_args: Vec<Term> = head_vars.iter().map(|&v| Term::Var(v)).collect();
        let aux_atom = Atom::new(aux, aux_args);
        out.push(Tgd::new(t.body.clone(), vec![aux_atom.clone()]));
        for h in &t.head {
            out.push(Tgd::new(vec![aux_atom.clone()], vec![h.clone()]));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{classify, is_guarded, is_linear, is_non_recursive, is_sticky};
    use omq_model::{parse_tgd, tgd::sch};

    #[test]
    fn single_head_untouched() {
        let mut voc = Vocabulary::new();
        let sigma = vec![parse_tgd(&mut voc, "P(X) -> exists Y . R(X,Y)").unwrap()];
        let n = normalize_heads(&mut voc, &sigma);
        assert_eq!(n, sigma);
    }

    #[test]
    fn multi_head_split() {
        let mut voc = Vocabulary::new();
        let sigma = vec![parse_tgd(&mut voc, "P(X) -> exists Y . R(X,Y), S(Y)").unwrap()];
        let n = normalize_heads(&mut voc, &sigma);
        assert_eq!(n.len(), 3);
        assert!(n.iter().all(|t| t.head.len() == 1));
        // First rule introduces the existential; unfolding rules are full.
        assert_eq!(n[0].existential_vars().len(), 1);
        assert!(n[1].is_full() && n[2].is_full());
    }

    #[test]
    fn preserves_linear() {
        let mut voc = Vocabulary::new();
        let sigma = vec![parse_tgd(&mut voc, "P(X) -> exists Y . R(X,Y), S(Y), P(Y)").unwrap()];
        assert!(is_linear(&sigma));
        let n = normalize_heads(&mut voc, &sigma);
        assert!(is_linear(&n));
    }

    #[test]
    fn preserves_guarded() {
        let mut voc = Vocabulary::new();
        let sigma = vec![parse_tgd(&mut voc, "G(X,Y), P(X) -> exists Z . R(X,Z), S(Z,Y)").unwrap()];
        assert!(is_guarded(&sigma));
        let n = normalize_heads(&mut voc, &sigma);
        assert!(is_guarded(&n));
    }

    #[test]
    fn preserves_non_recursive() {
        let mut voc = Vocabulary::new();
        let sigma = vec![
            parse_tgd(&mut voc, "A(X) -> B(X), C(X)").unwrap(),
            parse_tgd(&mut voc, "B(X), C(X) -> D(X)").unwrap(),
        ];
        assert!(is_non_recursive(&sigma));
        let n = normalize_heads(&mut voc, &sigma);
        assert!(is_non_recursive(&n));
    }

    #[test]
    fn preserves_sticky() {
        let mut voc = Vocabulary::new();
        let sigma = vec![
            parse_tgd(&mut voc, "T(X,Y,Z) -> exists W . S(Y,W), U(Y)").unwrap(),
            parse_tgd(&mut voc, "R(X,Y), P(Y,Z) -> exists W . T(X,Y,W)").unwrap(),
        ];
        assert!(is_sticky(&sigma));
        let n = normalize_heads(&mut voc, &sigma);
        assert!(is_sticky(&n));
    }

    #[test]
    fn fresh_predicates_extend_schema() {
        let mut voc = Vocabulary::new();
        let sigma = vec![parse_tgd(&mut voc, "P(X) -> Q(X), R(X,X)").unwrap()];
        let before = sch(&sigma).len();
        let n = normalize_heads(&mut voc, &sigma);
        assert_eq!(sch(&n).len(), before + 1);
        let report = classify(&n);
        assert!(report.linear && report.non_recursive);
    }
}
