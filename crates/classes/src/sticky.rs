//! Sticky sets of tgds: the inductive marking procedure (paper Defs. 4–5,
//! illustrated by Figure 1).
//!
//! A body variable is *marked* when it may violate the semantic stickiness
//! property of the chase (join values must "stick" to all inferred atoms):
//!
//! 1. (base) `x` is marked in `σ` if some head atom of `σ` omits `x`;
//! 2. (propagation) if `x` occurs in head atom `α` of `σ`, and some tgd `σ'`
//!    has a body atom `β` with the same predicate as `α` such that every
//!    variable of `β` at a position of `pos(α, x)` is marked in `σ'`, then
//!    `x` is marked in `σ`.
//!
//! `Σ` is **sticky** when no marked variable occurs twice in a body.

use std::collections::HashSet;

use omq_model::{Term, Tgd, VarId};

/// The result of running the marking procedure on a set of tgds.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Marking {
    /// `(tgd index, variable)` pairs marked in `Σ`.
    pub marked: HashSet<(usize, VarId)>,
    /// Number of fixpoint rounds the propagation took (base round excluded);
    /// exposed so the Figure-1 benchmark can report convergence behaviour.
    pub rounds: usize,
}

impl Marking {
    /// Is `x` marked in tgd `i`?
    pub fn is_marked(&self, tgd: usize, x: VarId) -> bool {
        self.marked.contains(&(tgd, x))
    }
}

/// Runs the inductive marking procedure of Def. 4 to fixpoint.
pub fn marked_variables(sigma: &[Tgd]) -> Marking {
    let mut marked: HashSet<(usize, VarId)> = HashSet::new();

    // Base step: x marked in σ if some head atom omits x.
    for (i, t) in sigma.iter().enumerate() {
        for x in t.body_vars() {
            if t.head.iter().any(|h| !h.mentions_var(x)) {
                marked.insert((i, x));
            }
        }
    }

    // Propagation to fixpoint.
    let mut rounds = 0usize;
    loop {
        let mut changed = false;
        for (i, t) in sigma.iter().enumerate() {
            for x in t.body_vars() {
                if marked.contains(&(i, x)) {
                    continue;
                }
                // x occurs in every head atom here (else base step marked it).
                'heads: for alpha in &t.head {
                    let pos = alpha.positions_of(Term::Var(x));
                    if pos.is_empty() {
                        continue;
                    }
                    for (j, t2) in sigma.iter().enumerate() {
                        for beta in &t2.body {
                            if beta.pred != alpha.pred {
                                continue;
                            }
                            // A term at a propagation position must be a
                            // *marked variable*. A constant blocks the
                            // propagation: the formal definition assumes
                            // constant-free tgds, and treating constants as
                            // vacuously marked would wrongly flag lossless
                            // sets (breaking Prop. 35, where lossless sets
                            // with constant-padded bodies must be sticky).
                            let all_marked = pos.iter().all(|&p| match beta.args[p] {
                                Term::Var(v) => marked.contains(&(j, v)),
                                _ => false,
                            });
                            if all_marked {
                                marked.insert((i, x));
                                changed = true;
                                break 'heads;
                            }
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
        rounds += 1;
    }
    Marking { marked, rounds }
}

/// Is `Σ` sticky (Def. 5): no tgd contains two occurrences of a variable
/// marked in it?
pub fn is_sticky(sigma: &[Tgd]) -> bool {
    let marking = marked_variables(sigma);
    for (i, t) in sigma.iter().enumerate() {
        for x in t.body_vars() {
            if marking.is_marked(i, x) {
                let occurrences: usize = t
                    .body
                    .iter()
                    .map(|a| a.vars().filter(|&v| v == x).count())
                    .sum();
                if occurrences > 1 {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_model::{parse_tgd, Vocabulary};

    /// Figure 1 variant keeping the join value: sticky.
    ///   T(x,y,z) → ∃w S(y,w)
    ///   R(x,y), P(y,z) → ∃w T(x,y,w)
    ///
    /// During the chase, `T(a,b,⊥)` (from the join on `y = b`) derives
    /// `S(b,⊥')` — the join value sticks to every inferred atom.
    #[test]
    fn figure1_keeping_join_value_is_sticky() {
        let mut voc = Vocabulary::new();
        let sigma = vec![
            parse_tgd(&mut voc, "T(X,Y,Z) -> exists W . S(Y,W)").unwrap(),
            parse_tgd(&mut voc, "R(X,Y), P(Y,Z) -> exists W . T(X,Y,W)").unwrap(),
        ];
        let m = marked_variables(&sigma);
        let x = voc.var_id("X").unwrap();
        let y = voc.var_id("Y").unwrap();
        // X is marked in σ0 (missing from S(Y,W)) and propagates to X in σ1
        // via position T[1] — but X occurs only once there, so Σ is sticky.
        assert!(m.is_marked(0, x));
        assert!(m.is_marked(1, x));
        assert!(!m.is_marked(1, y));
        assert!(is_sticky(&sigma));
    }

    /// Figure 1 variant dropping the join value: not sticky.
    ///   T(x,y,z) → ∃w S(x,w)
    ///   R(x,y), P(y,z) → ∃w T(x,y,w)
    ///
    /// `T(a,b,⊥)` now derives `S(a,⊥')`, losing the join value `b`; the
    /// marking procedure detects this: `y` is marked in σ0 (missing from the
    /// head), propagates to the join variable `y` of σ1 through position
    /// T[2], and `y` occurs twice in σ1's body.
    #[test]
    fn figure1_dropping_join_value_is_not_sticky() {
        let mut voc = Vocabulary::new();
        let sigma = vec![
            parse_tgd(&mut voc, "T(X,Y,Z) -> exists W . S(X,W)").unwrap(),
            parse_tgd(&mut voc, "R(X,Y), P(Y,Z) -> exists W . T(X,Y,W)").unwrap(),
        ];
        let m = marked_variables(&sigma);
        let y = voc.var_id("Y").unwrap();
        assert!(m.is_marked(0, y));
        assert!(m.is_marked(1, y));
        assert!(!is_sticky(&sigma));
    }

    #[test]
    fn base_marking_only() {
        let mut voc = Vocabulary::new();
        // Y missing from head → marked; occurs once → still sticky.
        let sigma = vec![parse_tgd(&mut voc, "R(X,Y) -> P(X)").unwrap()];
        let m = marked_variables(&sigma);
        assert!(m.is_marked(0, voc.var_id("Y").unwrap()));
        assert!(!m.is_marked(0, voc.var_id("X").unwrap()));
        assert!(is_sticky(&sigma));
    }

    #[test]
    fn marked_join_variable_breaks_stickiness() {
        let mut voc = Vocabulary::new();
        // Y is a join variable and is dropped from the head.
        let sigma = vec![parse_tgd(&mut voc, "R(X,Y), P(Y,Z) -> S(X,Z)").unwrap()];
        assert!(!is_sticky(&sigma));
    }

    #[test]
    fn linear_single_occurrence_always_sticky() {
        let mut voc = Vocabulary::new();
        let sigma = vec![
            parse_tgd(&mut voc, "P(X) -> exists Y . R(X,Y)").unwrap(),
            parse_tgd(&mut voc, "R(X,Y) -> P(Y)").unwrap(),
            parse_tgd(&mut voc, "T(X) -> P(X)").unwrap(),
        ];
        assert!(is_sticky(&sigma));
    }

    #[test]
    fn repeated_body_variable_in_one_atom() {
        let mut voc = Vocabulary::new();
        // X occurs twice (both in one atom) and is dropped from the head.
        let sigma = vec![parse_tgd(&mut voc, "R(X,X) -> exists Z . P(Z)").unwrap()];
        assert!(!is_sticky(&sigma));
    }

    #[test]
    fn propagation_through_two_steps() {
        let mut voc = Vocabulary::new();
        // σ0 drops X2 → X2 marked; σ1's head feeds σ0's body at the marked
        // position, propagating back through S.
        let sigma = vec![
            parse_tgd(&mut voc, "S(X1,X2) -> P(X1)").unwrap(),
            parse_tgd(&mut voc, "R(Y1,Y2) -> S(Y1,Y2)").unwrap(),
        ];
        let m = marked_variables(&sigma);
        assert!(m.is_marked(0, voc.var_id("X2").unwrap()));
        assert!(m.is_marked(1, voc.var_id("Y2").unwrap()));
        assert!(is_sticky(&sigma)); // no marked variable occurs twice
    }

    #[test]
    fn marking_respects_constants() {
        let mut voc = Vocabulary::new();
        // Constant at the propagation position: no constraint, so the head
        // variable of σ1 at that position is marked.
        let sigma = vec![
            parse_tgd(&mut voc, "S(X1,X2) -> P(X1)").unwrap(),
            parse_tgd(&mut voc, "S(a,Y2), S(Y2,b) -> T(Y2)").unwrap(),
        ];
        let m = marked_variables(&sigma);
        // In σ1, Y2 appears twice; is it marked? Y2 appears in head T(Y2);
        // propagation: T never occurs in a body, so no rule-2 marking; base:
        // head T(Y2) contains Y2, so not marked. Sticky holds.
        assert!(!m.is_marked(1, voc.var_id("Y2").unwrap()));
        assert!(is_sticky(&sigma));
    }
}
