//! # omq-classes
//!
//! Syntactic recognizers for the classes of tgds studied in the paper, and a
//! head-normalization pass.
//!
//! The paper's decidability landscape (§2) rests on three paradigms:
//!
//! * **guardedness** — class `G` (and its subclass `L` of *linear* tgds),
//! * **non-recursiveness** — class `NR` (acyclic predicate graph,
//!   equivalently stratifiability, Def. 3 / Lemma 32),
//! * **stickiness** — class `S`, defined via the inductive variable-marking
//!   procedure of Def. 4/5 (illustrated by Figure 1 of the paper).
//!
//! Also provided: the class `F` of full tgds (Datalog, Prop. 8), *lossless*
//! tgds (used in the proof of Prop. 35 — every lossless set is sticky), and
//! weak acyclicity (the classic data-exchange condition, mentioned in §3.1 as
//! a class whose containment problem is undecidable because it extends `F`).

pub mod guarded;
pub mod nonrecursive;
pub mod normalize;
pub mod sticky;
pub mod weakly_acyclic;

pub use guarded::{guard_index, is_guarded, is_guarded_tgd, is_linear, is_linear_tgd};
pub use nonrecursive::{is_non_recursive, predicate_graph, stratify};
pub use normalize::normalize_heads;
pub use sticky::{is_sticky, marked_variables, Marking};
pub use weakly_acyclic::is_weakly_acyclic;

use omq_model::Tgd;

/// A summary of which syntactic classes a set of tgds belongs to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClassReport {
    /// Every tgd has a guard atom (class `G`).
    pub guarded: bool,
    /// Every tgd has at most one body atom (class `L ⊆ G`).
    pub linear: bool,
    /// No tgd has existential variables (class `F`, Datalog).
    pub full: bool,
    /// The predicate graph is acyclic (class `NR`).
    pub non_recursive: bool,
    /// The marking condition holds (class `S`).
    pub sticky: bool,
    /// No special-edge cycle in the position graph.
    pub weakly_acyclic: bool,
    /// Every body variable also occurs in the head (implies sticky).
    pub lossless: bool,
}

impl ClassReport {
    /// Does the set fall in at least one of the paper's decidable classes
    /// (`G`, `L`, `NR`, `S`)?
    pub fn decidable_fragment(&self) -> bool {
        self.guarded || self.linear || self.non_recursive || self.sticky
    }
}

/// Is every body variable of `t` also a head variable?
pub fn is_lossless_tgd(t: &Tgd) -> bool {
    let hv = t.head_vars();
    t.body_vars().iter().all(|v| hv.contains(v))
}

/// Is every tgd lossless? Lossless sets with single-occurrence marked
/// variables are sticky; this is the key fact behind the full→sticky
/// transformation of Prop. 35.
pub fn is_lossless(sigma: &[Tgd]) -> bool {
    sigma.iter().all(is_lossless_tgd)
}

/// Classifies a set of tgds against every recognizer at once.
pub fn classify(sigma: &[Tgd]) -> ClassReport {
    ClassReport {
        guarded: is_guarded(sigma),
        linear: is_linear(sigma),
        full: sigma.iter().all(Tgd::is_full),
        non_recursive: is_non_recursive(sigma),
        sticky: is_sticky(sigma),
        weakly_acyclic: is_weakly_acyclic(sigma),
        lossless: is_lossless(sigma),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_model::{parse_tgd, Vocabulary};

    #[test]
    fn classify_datalog_transitive() {
        let mut voc = Vocabulary::new();
        let sigma = vec![
            parse_tgd(&mut voc, "E(X,Y) -> T(X,Y)").unwrap(),
            parse_tgd(&mut voc, "E(X,Y), T(Y,Z) -> T(X,Z)").unwrap(),
        ];
        let r = classify(&sigma);
        assert!(r.full);
        assert!(!r.non_recursive); // T depends on T
        assert!(r.weakly_acyclic); // no existentials at all
        assert!(!r.linear);
        assert!(!r.guarded); // no body atom contains X, Y and Z
    }

    #[test]
    fn classify_tc_single_rule() {
        let mut voc = Vocabulary::new();
        let sigma = vec![parse_tgd(&mut voc, "T(X,Y), T(Y,Z) -> T(X,Z)").unwrap()];
        let r = classify(&sigma);
        assert!(!r.guarded);
        assert!(!r.sticky); // Y is marked (missing from head) and occurs twice
        assert!(r.full);
        assert!(!r.lossless);
    }

    #[test]
    fn lossless_head_superset_is_sticky() {
        let mut voc = Vocabulary::new();
        let sigma = vec![
            parse_tgd(&mut voc, "R(X,Y), P(Y,Z) -> T(X,Y,Z)").unwrap(),
            parse_tgd(&mut voc, "T(X,Y,Z) -> S(X,Y,Z)").unwrap(),
        ];
        assert!(is_lossless(&sigma));
        assert!(classify(&sigma).sticky);
    }
}
