//! Guarded and linear tgds (paper §2, "Guardedness").

use omq_model::Tgd;

/// Index of a *guard* atom in the body of `t`: an atom containing every body
/// variable. Returns `None` when no body atom is a guard.
///
/// Fact tgds (empty body) are vacuously guarded; we report guard index `0`
/// only for non-empty bodies, so callers must treat `None` + empty body as
/// guarded (use [`is_guarded_tgd`] for the plain membership test).
pub fn guard_index(t: &Tgd) -> Option<usize> {
    let vars = t.body_vars();
    t.body
        .iter()
        .position(|a| vars.iter().all(|&v| a.mentions_var(v)))
}

/// Is the tgd guarded: does its body contain an atom with all body variables?
/// Fact tgds are guarded (every class of the paper is closed under fact-tgd
/// extension, §3.1).
pub fn is_guarded_tgd(t: &Tgd) -> bool {
    t.body.is_empty() || guard_index(t).is_some()
}

/// Is every tgd guarded (class `G`)?
pub fn is_guarded(sigma: &[Tgd]) -> bool {
    sigma.iter().all(is_guarded_tgd)
}

/// Is the tgd linear: at most one body atom (class `L ⊆ G`)?
pub fn is_linear_tgd(t: &Tgd) -> bool {
    t.body.len() <= 1
}

/// Is every tgd linear (class `L`)?
pub fn is_linear(sigma: &[Tgd]) -> bool {
    sigma.iter().all(is_linear_tgd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_model::{parse_tgd, Vocabulary};

    fn t(voc: &mut Vocabulary, s: &str) -> Tgd {
        parse_tgd(voc, s).unwrap()
    }

    #[test]
    fn guard_detection() {
        let mut voc = Vocabulary::new();
        let g = t(&mut voc, "G(X,Y,Z), R(X,Y) -> exists W . H(X,W)");
        assert_eq!(guard_index(&g), Some(0));
        assert!(is_guarded_tgd(&g));
        let ng = t(&mut voc, "R(X,Y), R(Y,Z) -> H(X,Z)");
        assert_eq!(guard_index(&ng), None);
        assert!(!is_guarded_tgd(&ng));
    }

    #[test]
    fn guard_not_first_atom() {
        let mut voc = Vocabulary::new();
        let g = t(&mut voc, "R(X,Y), G(Y,X,Z), P(Z) -> H(X)");
        assert_eq!(guard_index(&g), Some(1));
    }

    #[test]
    fn linear_and_fact_tgds() {
        let mut voc = Vocabulary::new();
        let lin = t(&mut voc, "P(X) -> exists Y . R(X,Y)");
        assert!(is_linear_tgd(&lin) && is_guarded_tgd(&lin));
        let fact = t(&mut voc, "true -> P(a)");
        assert!(is_linear_tgd(&fact) && is_guarded_tgd(&fact));
        assert!(is_linear(&[lin.clone(), fact]));
        let joined = t(&mut voc, "P(X), R(X,Y) -> H(Y)");
        assert!(!is_linear_tgd(&joined));
        assert!(!is_linear(&[lin, joined.clone()]));
        assert!(is_guarded(&[joined])); // R(X,Y) guards {X, Y}
    }

    #[test]
    fn inclusion_dependencies_are_linear() {
        let mut voc = Vocabulary::new();
        let id = t(&mut voc, "Emp(X,Y) -> exists Z . Dept(Y,Z)");
        assert!(is_linear(&[id]));
    }
}
