//! A minimal, dependency-free drop-in for the subset of the `proptest` API
//! this workspace uses.
//!
//! The crates-io `proptest` cannot be resolved in offline/CI sandboxes, so
//! this shim keeps the property tests compiling and running unchanged:
//! `proptest!` with `#![proptest_config(..)]`, `prop_assert!`,
//! `prop_assert_eq!`, `any::<T>()`, integer-range strategies,
//! `prop::collection::vec`, `prop::option::of`, tuple strategies, and
//! `Strategy::prop_map`.
//!
//! Differences from the real crate: generation is driven by a fixed-seed
//! SplitMix64 stream (fully deterministic across runs) and failing cases are
//! reported with their `Debug` rendering but **not shrunk**.

use std::fmt;
use std::ops::Range;

/// Deterministic generator state for one test run.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded for `case` within a fixed master seed.
    pub fn for_case(case: u64) -> Self {
        TestRng {
            state: 0x9e37_79b9_7f4a_7c15 ^ case.wrapping_mul(0xbf58_476d_1ce4_e5b9),
        }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// The error type carried out of a failing property body.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Runner configuration (subset: case count only).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A value-generation strategy.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + fmt::Debug {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (subset of proptest's `any`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy for the full range of a primitive type.
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                debug_assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($s:ident $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// The `prop::` namespace (`collection`, `option`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy for `Vec<S::Value>` with length drawn from `len`.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// Generates vectors of values from `element` with a length in
        /// `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "empty length range");
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let span = (self.len.end - self.len.start) as u64;
                let n = self.len.start + rng.below(span) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use super::super::{Strategy, TestRng};

        /// Strategy for `Option<S::Value>`.
        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// Generates `Some` values from `inner` about half the time.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                if rng.next_u64() & 1 == 1 {
                    Some(self.inner.generate(rng))
                } else {
                    None
                }
            }
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Asserts inside a `proptest!` body; on failure the case is reported with
/// its generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strategies = ($($strat,)+);
            $crate::__strategy_destructure!(strategies, ($($arg)+));
            for case in 0..u64::from(config.cases) {
                let mut rng = $crate::TestRng::for_case(case);
                $(
                    let $arg = $crate::Strategy::generate($arg, &mut rng);
                )+
                let rendered = format!("{:?}", ($(&$arg,)+));
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property `{}` failed at case {case}/{}:\n{e}\ninputs: {rendered}",
                        stringify!($name),
                        config.cases,
                    );
                }
            }
        }
        $crate::__proptest_each! { ($cfg) $($rest)* }
    };
}

/// Binds each strategy in a tuple to the name of the argument it feeds
/// (`$arg` is first bound to `&strategy`, then shadowed by the generated
/// value inside the case loop).
#[doc(hidden)]
#[macro_export]
macro_rules! __strategy_destructure {
    ($tuple:ident, ($($arg:ident)+)) => {
        let ($(ref $arg,)+) = $tuple;
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism_and_ranges() {
        let s = (0u8..4, any::<bool>()).prop_map(|(n, b)| (n, b));
        let mut r1 = crate::TestRng::for_case(3);
        let mut r2 = crate::TestRng::for_case(3);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        for case in 0..64 {
            let mut rng = crate::TestRng::for_case(case);
            let (n, _) = s.generate(&mut rng);
            assert!(n < 4);
        }
    }

    #[test]
    fn vec_and_option_strategies() {
        let v = prop::collection::vec(0u8..10, 1..5);
        let o = prop::option::of(0u8..10);
        let mut some = 0;
        for case in 0..100 {
            let mut rng = crate::TestRng::for_case(case);
            let xs = v.generate(&mut rng);
            assert!((1..5).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 10));
            some += o.generate(&mut rng).is_some() as usize;
        }
        assert!(some > 20 && some < 80);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro pipeline itself: generated values respect strategies.
        #[test]
        fn macro_roundtrip(x in 0u8..4, flags in prop::collection::vec(any::<bool>(), 0..3)) {
            prop_assert!(x < 4);
            prop_assert_eq!(flags.len() < 3, true);
        }
    }
}
