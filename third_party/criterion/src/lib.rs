//! A minimal, dependency-free drop-in for the subset of the `criterion`
//! API used by this workspace's benches.
//!
//! The real crates-io `criterion` is unavailable in offline/CI sandboxes,
//! and the benches only need wall-clock medians, not criterion's full
//! statistical machinery. This shim keeps every `benches/*.rs` file
//! compiling unchanged: `Criterion::benchmark_group`, `sample_size`,
//! `bench_function(.., |b| b.iter(..))`, `finish`, and the
//! `criterion_group!`/`criterion_main!` macros. Each benchmark runs a short
//! warm-up followed by `sample_size` timed samples and prints the median,
//! min, and max per iteration.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Entry point handed to each bench function by `criterion_group!`.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            sample_size: 10,
        }
    }

    /// Runs a stand-alone benchmark (group of one).
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.to_string(), self.default_sample_size, f);
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target measurement time. Accepted for API compatibility;
    /// the shim is sample-count driven.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.to_string(), self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The per-benchmark timing handle: call [`Bencher::iter`] with the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` once per sample (plus one warm-up call).
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        black_box(routine()); // warm-up
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench<F>(id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {id:<40} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let lo = b.samples[0];
    let hi = b.samples[b.samples.len() - 1];
    println!(
        "  {id:<40} median {:>10} [{} .. {}]",
        fmt(median),
        fmt(lo),
        fmt(hi)
    );
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

/// Builds a `fn main()`-callable group runner from bench functions, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Expands to `fn main()` running the given groups, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // The real criterion filters by CLI args; the shim runs all
            // benches and ignores harness flags like `--bench`.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3).bench_function("add", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    #[test]
    fn macros_compose() {
        fn bench_one(c: &mut Criterion) {
            c.bench_function("one", |b| b.iter(|| black_box(7) * 6));
        }
        criterion_group!(benches, bench_one);
        benches();
    }
}
