//! A minimal readiness-polling shim over the platform's `poll(2)`.
//!
//! The workspace builds offline, so instead of depending on `mio`/`libc`
//! this crate declares the one libc symbol the serve reactor needs and
//! wraps it in a safe, slice-based API. Only level-triggered readiness is
//! exposed — exactly what a hand-rolled reactor over `std` nonblocking
//! sockets requires.
//!
//! On non-Unix targets [`poll`] degrades to an error so the workspace
//! still compiles; the reactor refuses to start there.

use std::io;

/// Readable readiness (data or EOF pending).
pub const POLLIN: i16 = 0x001;
/// Writable readiness (the socket send buffer has room).
pub const POLLOUT: i16 = 0x004;
/// Error condition (revents only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (revents only).
pub const POLLHUP: i16 = 0x010;
/// Fd not open (revents only).
pub const POLLNVAL: i16 = 0x020;

/// One entry of the poll set, layout-compatible with `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    /// The file descriptor to watch (negative entries are skipped by the
    /// kernel, which is how callers tombstone a slot without reshuffling).
    pub fd: i32,
    /// Requested events (`POLLIN` / `POLLOUT` bitmask).
    pub events: i16,
    /// Returned events, filled in by [`poll`].
    pub revents: i16,
}

impl PollFd {
    pub fn new(fd: i32, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP | POLLERR) != 0
    }

    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLERR) != 0
    }

    pub fn invalid(&self) -> bool {
        self.revents & POLLNVAL != 0
    }
}

#[cfg(unix)]
extern "C" {
    fn poll(
        fds: *mut PollFd,
        nfds: std::os::raw::c_ulong,
        timeout: std::os::raw::c_int,
    ) -> std::os::raw::c_int;
}

/// Blocks until at least one fd in `fds` is ready, the timeout elapses
/// (`Ok(0)`), or a signal interrupts the wait (retried internally).
/// `timeout_ms < 0` waits forever.
#[cfg(unix)]
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        let rc = unsafe {
            poll(
                fds.as_mut_ptr(),
                fds.len() as std::os::raw::c_ulong,
                timeout_ms,
            )
        };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

#[cfg(not(unix))]
pub fn poll_fds(_fds: &mut [PollFd], _timeout_ms: i32) -> io::Result<usize> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "minipoll: poll(2) is only available on unix targets",
    ))
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn timeout_returns_zero_ready() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut fds = [PollFd::new(listener.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, 10).unwrap();
        assert_eq!(n, 0);
        assert!(!fds[0].readable());
    }

    #[test]
    fn pending_connection_reports_listener_readable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let mut fds = [PollFd::new(listener.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, 1000).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable());
    }

    #[test]
    fn data_reports_stream_readable_and_idle_stream_writable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        client.write_all(b"x").unwrap();
        let mut fds = [PollFd::new(server.as_raw_fd(), POLLIN | POLLOUT)];
        let n = poll_fds(&mut fds, 1000).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable(), "one byte is pending");
        assert!(fds[0].writable(), "send buffer is empty");
    }

    #[test]
    fn negative_fd_entries_are_skipped() {
        let mut fds = [PollFd::new(-1, POLLIN)];
        let n = poll_fds(&mut fds, 0).unwrap();
        assert_eq!(n, 0);
        assert_eq!(fds[0].revents, 0);
    }
}
