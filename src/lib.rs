//! Facade crate re-exporting the whole `omq` workspace API.
pub use omq_automata as automata;
pub use omq_chase as chase;
pub use omq_classes as classes;
pub use omq_core as core;
pub use omq_guarded as guarded;
pub use omq_model as model;
pub use omq_reductions as reductions;
pub use omq_rewrite as rewrite;
pub use omq_serve as serve;
