#!/usr/bin/env bash
# Local CI gate: formatting, lints, the tier-1 test suite, and the perf
# smoke benchmark. Run from the repository root:
#
#   scripts/ci.sh
#
# The perf smoke step rewrites BENCH_chase.json and BENCH_rewrite.json;
# commit the refreshed files when the counters change intentionally.
# scripts/bench_diff.py shows the drift against the committed baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --release -- -D warnings

echo "==> tier-1: cargo build --release && cargo test"
cargo build --release
cargo test -q --release --workspace

echo "==> perf smoke (writes BENCH_chase.json, BENCH_rewrite.json)"
cargo run -q --release -p omq-bench --bin perf_smoke

echo "==> rewriting bench sanity (every workload family present)"
for family in "rewrite:E3 nr" "rewrite:E2 sticky" "rewrite:E1 linear"; do
    if ! grep -q "$family" BENCH_rewrite.json; then
        echo "BENCH_rewrite.json is missing the '$family' rows" >&2
        exit 1
    fi
done
[ "$(jq length BENCH_rewrite.json)" -ge 5 ] || {
    echo "BENCH_rewrite.json has fewer rows than the committed sweep" >&2
    exit 1
}

echo "==> bench diff vs committed baseline"
python3 scripts/bench_diff.py || true

echo "CI OK"
