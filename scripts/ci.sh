#!/usr/bin/env bash
# Local CI gate: formatting, lints, the tier-1 test suite, and the perf
# smoke benchmark. Run from the repository root:
#
#   scripts/ci.sh
#
# The perf smoke step rewrites BENCH_chase.json, BENCH_rewrite.json, and
# BENCH_guarded.json, the serve bench rewrites BENCH_serve.json, and the
# store bench rewrites BENCH_store.json; commit the refreshed files when
# the counters change intentionally.
# scripts/bench_diff.py shows the drift against the committed baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --release -- -D warnings

echo "==> tier-1: cargo build --release && cargo test"
cargo build --release
cargo test -q --release --workspace

echo "==> tier-1 with observability compiled out (--no-default-features)"
# Separate target dir so the two feature configurations don't thrash each
# other's incremental caches. Proves every omq_obs entry point compiles to
# a no-op surface with identical call sites, and (via the serve telemetry
# suite it runs) that the metrics registry, Prometheus exposition, and
# flight recorder still answer with the span/sink recorder compiled out.
cargo clippy --workspace --all-targets --release --no-default-features \
    --target-dir target/noobs -- -D warnings
cargo test -q --release --workspace --no-default-features \
    --target-dir target/noobs

echo "==> perf smoke (writes BENCH_chase.json, BENCH_rewrite.json, BENCH_guarded.json)"
cargo run -q --release -p omq-bench --bin perf_smoke

echo "==> guarded/reduction sweep present (witness n=3..6, tiling k=2/3, encode)"
[ -f BENCH_guarded.json ] || {
    echo "BENCH_guarded.json was not written by perf_smoke" >&2
    exit 1
}
for row in \
    "guarded:witness counter n=3" "guarded:witness counter n=4" \
    "guarded:witness counter n=5" "guarded:witness counter n=6" \
    "guarded:tiling etp k=2 m=2" "guarded:tiling etp k=3 m=2" \
    "guarded:encode E4 depth=2"; do
    if ! grep -q "$row" BENCH_guarded.json; then
        echo "BENCH_guarded.json is missing the '$row' row" >&2
        exit 1
    fi
done

echo "==> automata-pipeline counters on the encode row"
# The encode row compiles one C-tree/2WAPA encoding end to end; it must
# surface the hash-consed B+(X) pool and the NTA fixpoint counters (both
# deterministic for a fixed workload).
jq -e 'map(select(.workload == "guarded:encode E4 depth=2")) | .[0]
    | .ctr_bf_nodes_interned >= 1
      and .ctr_fixpoint_rounds >= 1
      and .ctr_guarded_encodings_compiled == 1' \
    BENCH_guarded.json >/dev/null || {
    echo "guarded:encode row lost its pool/fixpoint counters" >&2
    exit 1
}

echo "==> guarded headline ceiling (tiling containment, k=2)"
# The committed best-of-3 is ~0.21 ms (propositional bitset fast path +
# relaxation pruning); the pre-optimization baseline was 1.087 ms. The
# gate trips well before the optimization is lost while tolerating a
# loaded machine.
jq -e 'map(select(.workload == "guarded:tiling etp k=2 m=2")) | .[0].wall_min_ms <= 0.8' \
    BENCH_guarded.json >/dev/null || {
    echo "guarded:tiling etp k=2 m=2 wall_min_ms regressed above the 0.8 ms ceiling" >&2
    exit 1
}

echo "==> rewriting bench sanity (every workload family present)"
for family in "rewrite:E3 nr" "rewrite:E2 sticky" "rewrite:E1 linear"; do
    if ! grep -q "$family" BENCH_rewrite.json; then
        echo "BENCH_rewrite.json is missing the '$family' rows" >&2
        exit 1
    fi
done
[ "$(jq length BENCH_rewrite.json)" -ge 5 ] || {
    echo "BENCH_rewrite.json has fewer rows than the committed sweep" >&2
    exit 1
}

echo "==> rewriting headline ceiling (cost-based adaptive planner, nr strata=4)"
# Loose tripwire, not the headline claim: the committed number is ~0.36 s
# best-of-3; the gate only catches a real regression while tolerating a
# loaded machine (observed noise peaks ~0.42 s).
jq -e 'map(select(.workload == "rewrite:E3 nr strata=4")) | .[0].wall_ms <= 600' \
    BENCH_rewrite.json >/dev/null || {
    echo "rewrite:E3 nr strata=4 wall_ms regressed above the 600 ms ceiling" >&2
    exit 1
}

echo "==> adaptive-planner counters present in the BENCH files"
# Every BENCH file must surface the planner's work: perf_smoke rows carry
# plans_reoptimized per row, serve_bench reports the sweep-wide delta on
# its summary row.
for bench in BENCH_chase.json BENCH_rewrite.json BENCH_guarded.json; do
    jq -e '[.[] | select(has("plans_reoptimized"))] | length > 0' \
        "$bench" >/dev/null || {
        echo "$bench has no rows with the planner counters (plans_reoptimized)" >&2
        exit 1
    }
done

echo "==> serve smoke (omq-serve JSON-lines round trip, incl. a deliberate timeout)"
# Requests 10-14 exercise the C-tree encoding cache: a guarded lhs checked
# against two distinct rhs queries compiles its encoding once (id 12) and
# hits the cache on the second contains (id 13); the final stats op must
# report that warm hit, and both responses must render the identical
# guarded_encoding artifact regardless of cache state.
SERVE_OUT=$(printf '%s\n' \
  '{"id":1,"op":"register","name":"s","program":"P(X) -> exists Y . R(X,Y)\nR(X,Y) -> P(Y)\nq(X) :- R(X,Y), P(Y)","schema":["P","R"],"query":"q"}' \
  '{"id":2,"op":"contains","lhs":"s","rhs":"s","deadline_ms":0}' \
  '{"id":3,"op":"contains","lhs":"s","rhs":"s"}' \
  '{"id":4,"op":"evaluate","name":"s","facts":["P(a)"]}' \
  '{"id":5,"op":"contains","lhs":"s","rhs":"s","trace":true}' \
  '{"id":6,"op":"explain","lhs":"s","rhs":"s"}' \
  '{"id":7,"op":"register","name":"t","program":"q(X) :- T(X)","schema":["T"],"query":"q"}' \
  '{"id":8,"op":"explain","lhs":"s","rhs":"t"}' \
  '{"id":9,"op":"stats"}' \
  '{"id":10,"op":"register","name":"g","program":"G(X,Y,Z), R(X,Y) -> exists W . G(Y,Z,W), R(Y,Z)\nq :- R(X,Y), R(Y,Z)","schema":["G","R"],"query":"q"}' \
  '{"id":11,"op":"register","name":"g2","program":"q :- R(X,Y)","schema":["G","R"],"query":"q"}' \
  '{"id":12,"op":"contains","lhs":"g","rhs":"g2"}' \
  '{"id":13,"op":"contains","lhs":"g","rhs":"g"}' \
  '{"id":14,"op":"stats"}' \
  | ./target/release/omq-serve)
echo "$SERVE_OUT" | jq -s -e '
    length == 14
    and (.[0].ok and .[0].registered == "s")
    and (.[1].timed_out == true and .[1].verdict == "unknown")
    and (.[2].ok and .[2].verdict == "contained")
    and (.[3].ok and .[3].answers == [["a"]])
    and (.[4].ok and .[4].verdict == "contained" and (.[4].trace.phases | has("serve.contains")))
    and (.[5].ok and .[5].verdict == "contained" and (.[5].coverage.shown | length > 0))
    and (.[6].ok and .[6].registered == "t")
    and (.[7].ok and .[7].verdict == "not_contained" and (.[7] | has("derivation")))
    and (.[8].ok and .[8].registered == 2 and (.[8].latency | has("serve.contains")))
    and (.[9].ok and .[9].registered == "g")
    and (.[10].ok and .[10].registered == "g2")
    and (.[11].ok and .[11].guarded_encoding.consistent == true)
    and (.[12].ok and .[12].guarded_encoding == .[11].guarded_encoding)
    and (.[13].ok and .[13].encoding_cache_hits == 1)
' >/dev/null || {
    echo "serve smoke test failed; responses were:" >&2
    echo "$SERVE_OUT" >&2
    exit 1
}

echo "==> serve store smoke (assert/retract/snapshot/evaluate-at + compaction)"
# threshold 1 compacts after every unpinned mutation, so the smoke proves
# (a) compaction really runs, (b) the snapshot pin keeps version 1
# answerable and byte-stable while the head moves, (c) an unpinned
# pre-floor version fails with the structured stale_version kind, and
# (d) the stats op surfaces the store counter block.
STORE_OUT=$(printf '%s\n' \
  '{"id":1,"op":"register","name":"tc","program":"E(X,Y) -> T(X,Y)\nE(X,Y), T(Y,Z) -> T(X,Z)\nq(X,Y) :- T(X,Y)","schema":["E"],"query":"q"}' \
  '{"id":2,"op":"assert","name":"tc","facts":["E(a,b)","E(b,c)"]}' \
  '{"id":3,"op":"evaluate","name":"tc"}' \
  '{"id":4,"op":"snapshot","name":"tc"}' \
  '{"id":5,"op":"assert","name":"tc","facts":["E(c,d)"]}' \
  '{"id":6,"op":"evaluate","name":"tc","at":1}' \
  '{"id":7,"op":"evaluate","name":"tc"}' \
  '{"id":8,"op":"retract","name":"tc","facts":["E(b,c)"]}' \
  '{"id":9,"op":"evaluate","name":"tc"}' \
  '{"id":10,"op":"evaluate","name":"tc","at":0}' \
  '{"id":11,"op":"stats"}' \
  | ./target/release/omq-serve --store-compact-threshold 1)
echo "$STORE_OUT" | jq -s -e '
    length == 11
    and (.[0].ok and .[0].registered == "tc")
    and (.[1].ok and .[1].asserted == "tc" and .[1].version == 1 and .[1].compactions == 1)
    and (.[2].ok and .[2].count == 3 and .[2].guarantee == "exact" and .[2].version == 1)
    and (.[3].ok and .[3].snapshot == "tc" and .[3].version == 1 and .[3].pinned)
    and (.[4].ok and .[4].asserted == "tc" and .[4].version == 2 and .[4].maintained and .[4].complete)
    and (.[5].ok and .[5].count == 3 and .[5].version == 1 and .[5].answers == .[2].answers)
    and (.[6].ok and .[6].count == 6 and .[6].version == 2)
    and (.[7].ok and .[7].retracted == "tc" and .[7].version == 3)
    and (.[8].ok and .[8].count == 2 and .[8].guarantee == "exact")
    and (.[9].ok == false and .[9].error.kind == "stale_version")
    and (.[10].ok and .[10].store.stores == 1
         and .[10].store.compactions >= 1 and .[10].store.dred_deleted >= 1
         and (.[10].store | has("novelty_size")) and (.[10].store | has("rederived"))
         and .[10].store.incremental_resumes >= 1)
' >/dev/null || {
    echo "serve store smoke test failed; responses were:" >&2
    echo "$STORE_OUT" >&2
    exit 1
}

echo "==> serve coalescing smoke (identical in-flight burst shares one solver run)"
# Eight identical cold `contains` in one batch fan out together; the
# strata-4 E3 rewriting is slow enough (~0.3 s) that every follower probes
# while the leader is still computing, so they coalesce onto its slot
# instead of re-running the solver. Gates: exactly one computation, a
# nonzero coalesced count, and byte-identical verdicts on every line.
NR_REG='{"id":0,"op":"register","name":"nr","program":"L0(X,Y), L0(Y,Z) -> L1(X,Z)\nL1(X,Y), L1(Y,Z) -> L2(X,Z)\nL2(X,Y), L2(Y,Z) -> L3(X,Z)\nL3(X,Y), L3(Y,Z) -> L4(X,Z)\nq(X,Z) :- L4(X,Z)","schema":["L0"],"query":"q"}'
COAL_OUT=$({ printf '%s\n\n' "$NR_REG"
    for i in $(seq 1 8); do
        printf '{"id":%d,"op":"contains","lhs":"nr","rhs":"nr"}\n' "$i"
    done
    printf '\n{"id":99,"op":"stats"}\n'; } | ./target/release/omq-serve --threads 8)
echo "$COAL_OUT" | jq -s -e '
    length == 10
    and ([.[1:9][] | select(.ok and .verdict == "contained")] | length == 8)
    and ([.[1:9][] | .verdict] | unique | length == 1)
    and (.[9].coalesced_hits >= 1)
    and (.[9].coalescing.computations == 1)
' >/dev/null || {
    echo "serve coalescing smoke failed; responses were:" >&2
    echo "$COAL_OUT" >&2
    exit 1
}

echo "==> serve overload smoke (reactor sheds with the structured shape)"
# A single-worker reactor with watermark 4: one connection pins the worker
# down with eight slow cold contains, so a second connection's solver
# probe must observe the saturated queue and come back with the structured
# `shed` error — while `stats` on the same batch is admitted and carries
# the reactor block. The blocker batch itself is answered in full:
# shedding refuses new work, it never poisons admitted work.
SHED_DIR=$(mktemp -d)
./target/release/omq-serve --listen 127.0.0.1:0 --workers 1 \
    --queue-watermark 4 --no-cache --threads 1 2>"$SHED_DIR/err" &
SHED_PID=$!
SHED_ADDR=""
for _ in $(seq 1 100); do
    SHED_ADDR=$(sed -n 's/^omq-serve: listening on \([0-9.:]*\) .*/\1/p' "$SHED_DIR/err")
    [ -n "$SHED_ADDR" ] && break
    sleep 0.05
done
[ -n "$SHED_ADDR" ] || {
    echo "reactor did not report its listen address" >&2
    kill "$SHED_PID" 2>/dev/null || true
    exit 1
}
SHED_PORT=${SHED_ADDR##*:}
exec 3<>"/dev/tcp/127.0.0.1/$SHED_PORT"
printf '%s\n\n' "$NR_REG" >&3
read -r SHED_REG <&3
exec 3<&- 3>&-
exec 4<>"/dev/tcp/127.0.0.1/$SHED_PORT"
{ for i in $(seq 1 8); do
    printf '{"id":%d,"op":"contains","lhs":"nr","rhs":"nr"}\n' "$i"
done
printf '\n'; } >&4
sleep 0.3
exec 5<>"/dev/tcp/127.0.0.1/$SHED_PORT"
printf '{"id":100,"op":"contains","lhs":"nr","rhs":"nr"}\n{"id":101,"op":"stats"}\n\n' >&5
read -r SHED_LINE <&5
read -r SHED_STATS <&5
exec 5<&- 5>&-
SHED_ANSWERED=0
while read -r -t 30 _ <&4; do
    SHED_ANSWERED=$((SHED_ANSWERED + 1))
    [ "$SHED_ANSWERED" -ge 8 ] && break
done
exec 4<&- 4>&-
kill "$SHED_PID" 2>/dev/null || true
wait "$SHED_PID" 2>/dev/null || true
echo "$SHED_REG" | jq -e '.ok and .registered == "nr"' >/dev/null || {
    echo "serve overload smoke: registration failed: $SHED_REG" >&2
    exit 1
}
echo "$SHED_LINE" | jq -e '
    .ok == false and .error.kind == "shed" and .error.retry == true
    and .error.queue_depth >= 4 and .error.watermark == 4
' >/dev/null || {
    echo "serve overload smoke: expected a structured shed, got: $SHED_LINE" >&2
    exit 1
}
echo "$SHED_STATS" | jq -e '
    .ok and .reactor.shed >= 1 and .reactor.watermark == 4
    and .reactor.connections.peak >= 2 and (.reactor.shards | length == 1)
' >/dev/null || {
    echo "serve overload smoke: stats lost the reactor block: $SHED_STATS" >&2
    exit 1
}
[ "$SHED_ANSWERED" -eq 8 ] || {
    echo "serve overload smoke: blocker got $SHED_ANSWERED/8 answers" >&2
    exit 1
}

echo "==> serve metrics smoke (live Prometheus scrape + tail-sampled trace_dump)"
# Both planes of one reactor: the protocol port answers requests, the
# --metrics-listen port answers raw-HTTP scrapes. Two scrapes bracket a
# mixed workload (contains, a zero-deadline timeout, store assert/retract,
# a forced shed behind a blocker), gating (a) that the request / shed /
# coalescing / store families are present on a cold scrape and (b) that
# the counters the workload must have moved increased monotonically.
# trace_dump must retain the timed-out and the shed request with reasons.
MET_DIR=$(mktemp -d)
./target/release/omq-serve --listen 127.0.0.1:0 --metrics-listen 127.0.0.1:0 \
    --workers 1 --queue-watermark 4 --no-cache --threads 1 2>"$MET_DIR/err" &
MET_PID=$!
MET_ADDR=""
MET_SCRAPE=""
for _ in $(seq 1 100); do
    MET_ADDR=$(sed -n 's/^omq-serve: listening on \([0-9.:]*\) .*/\1/p' "$MET_DIR/err")
    MET_SCRAPE=$(sed -n 's/^omq-serve: metrics on \([0-9.:]*\)$/\1/p' "$MET_DIR/err")
    [ -n "$MET_ADDR" ] && [ -n "$MET_SCRAPE" ] && break
    sleep 0.05
done
{ [ -n "$MET_ADDR" ] && [ -n "$MET_SCRAPE" ]; } || {
    echo "reactor did not report both listen addresses" >&2
    kill "$MET_PID" 2>/dev/null || true
    exit 1
}
MET_PORT=${MET_ADDR##*:}
SCRAPE_PORT=${MET_SCRAPE##*:}
scrape() {
    exec 9<>"/dev/tcp/127.0.0.1/$SCRAPE_PORT"
    printf 'GET /metrics HTTP/1.0\r\n\r\n' >&9
    cat <&9
    exec 9<&- 9>&-
}
metric() { echo "$1" | awk -v k="$2" '$1 == k { print $2; exit }'; }
# Warm-up batch before scrape 1: a store mutation, a deliberate timeout,
# and one full contains.
exec 3<>"/dev/tcp/127.0.0.1/$MET_PORT"
printf '%s\n' "$NR_REG" \
    '{"id":1,"op":"assert","name":"nr","facts":["L0(a,b)","L0(b,c)"]}' \
    '{"id":2,"op":"contains","lhs":"nr","rhs":"nr","deadline_ms":0}' \
    '{"id":3,"op":"contains","lhs":"nr","rhs":"nr"}' >&3
printf '\n' >&3
for _ in $(seq 1 4); do read -r -t 60 _ <&3; done
exec 3<&- 3>&-
# Presence gate: every family the workload exercised must appear. A
# couple of retries tolerate a scrape racing the tail of the batch.
MET_SERIES=(
    'omq_requests_total{op="serve.contains"}'
    'omq_request_timeouts_total{op="serve.contains"}'
    'omq_requests_shed_total'
    'omq_shed_slo_burn_ratio'
    'omq_coalesced_total'
    'omq_verdict_computations_total'
    'omq_store_ops_total{op="assert"}'
    'omq_store_maintenance_total{kind="incremental_resume"}'
    'omq_op_latency_us_bucket'
    'omq_reactor_requests_total'
    'omq_flight_offered_total'
)
SCRAPE1=""
MET_MISSING=""
for _ in $(seq 1 5); do
    SCRAPE1=$(scrape)
    MET_MISSING=""
    echo "$SCRAPE1" | grep -q '^HTTP/1.0 200 OK' || MET_MISSING="an HTTP 200"
    if [ -z "$MET_MISSING" ]; then
        for series in "${MET_SERIES[@]}"; do
            echo "$SCRAPE1" | grep -qF "$series" || {
                MET_MISSING="$series"
                break
            }
        done
    fi
    [ -z "$MET_MISSING" ] && break
    sleep 0.2
done
[ -z "$MET_MISSING" ] || {
    echo "cold scrape is missing $MET_MISSING; last scrape was:" >&2
    echo "$SCRAPE1" >&2
    kill "$MET_PID" 2>/dev/null || true
    exit 1
}
# Blocker pins the single worker; the probe on a saturated queue sheds.
exec 4<>"/dev/tcp/127.0.0.1/$MET_PORT"
{ for i in $(seq 1 8); do
    printf '{"id":%d,"op":"contains","lhs":"nr","rhs":"nr"}\n' "$i"
done
printf '\n'; } >&4
sleep 0.3
exec 5<>"/dev/tcp/127.0.0.1/$MET_PORT"
printf '{"id":100,"op":"contains","lhs":"nr","rhs":"nr"}\n\n' >&5
read -r MET_SHED <&5
exec 5<&- 5>&-
MET_ANSWERED=0
while read -r -t 30 _ <&4; do
    MET_ANSWERED=$((MET_ANSWERED + 1))
    [ "$MET_ANSWERED" -ge 8 ] && break
done
exec 4<&- 4>&-
echo "$MET_SHED" | jq -e '.ok == false and .error.kind == "shed"' >/dev/null || {
    echo "metrics smoke: expected a shed probe, got: $MET_SHED" >&2
    kill "$MET_PID" 2>/dev/null || true
    exit 1
}
# A store retract after the blocker drains, then the flight dump.
exec 6<>"/dev/tcp/127.0.0.1/$MET_PORT"
printf '%s\n' \
    '{"id":200,"op":"retract","name":"nr","facts":["L0(a,b)"]}' \
    '{"id":201,"op":"trace_dump"}' >&6
printf '\n' >&6
read -r -t 60 MET_RETRACT <&6
read -r -t 60 MET_DUMP <&6
exec 6<&- 6>&-
SCRAPE2=$(scrape)
kill "$MET_PID" 2>/dev/null || true
wait "$MET_PID" 2>/dev/null || true
echo "$MET_RETRACT" | jq -e '.ok and .retracted == "nr"' >/dev/null || {
    echo "metrics smoke: retract failed: $MET_RETRACT" >&2
    exit 1
}
echo "$MET_DUMP" | jq -e '
    .ok and has("slow_threshold_us")
    and ([.retained[].reason] | index("timeout") != null)
    and ([.retained[].reason] | index("shed") != null)
    and ([.retained[] | select(.reason == "timeout") | .spans[0].name]
         | index("serve.contains") != null)
' >/dev/null || {
    echo "metrics smoke: trace_dump lost the timeout/shed tail: $MET_DUMP" >&2
    exit 1
}
for pair in \
    'omq_requests_total{op="serve.contains"}:gt' \
    'omq_requests_shed_total:gt' \
    'omq_store_ops_total{op="retract"}:gt' \
    'omq_flight_offered_total:gt' \
    'omq_store_ops_total{op="assert"}:ge'; do
    series=${pair%:*}
    mode=${pair##*:}
    V1=$(metric "$SCRAPE1" "$series")
    V2=$(metric "$SCRAPE2" "$series")
    { [ -n "$V1" ] && [ -n "$V2" ]; } || {
        echo "series $series missing from a scrape (v1='$V1' v2='$V2')" >&2
        exit 1
    }
    if [ "$mode" = gt ]; then
        [ "$V2" -gt "$V1" ] || {
            echo "$series did not increase across the workload ($V1 -> $V2)" >&2
            exit 1
        }
    else
        [ "$V2" -ge "$V1" ] || {
            echo "$series went backwards across the workload ($V1 -> $V2)" >&2
            exit 1
        }
    fi
done

echo "==> serve restart smoke (persisted artifact tier survives a cold start)"
# Two separate omq-serve processes sharing one --cache-dir: the first
# computes and persists the rewriting artifact, the second must answer the
# identical contains from the disk tier (artifact_disk.hits >= 1) with
# byte-identical output — the tier rehydrates through the fresh
# vocabulary, so cache state can never leak into rendered bytes.
ART_DIR=$(mktemp -d)
LIN_REG='{"id":0,"op":"register","name":"lin","program":"P(X) -> exists Y . R(X,Y)\nR(X,Y) -> P(Y)\nq(X) :- R(X,Y), P(Y)","schema":["P","R"],"query":"q"}'
ART_RUN1=$(printf '%s\n' "$LIN_REG" \
    '{"id":1,"op":"contains","lhs":"lin","rhs":"lin"}' '{"id":2,"op":"stats"}' \
    | ./target/release/omq-serve --cache-dir "$ART_DIR" --threads 1)
ART_RUN2=$(printf '%s\n' "$LIN_REG" \
    '{"id":1,"op":"contains","lhs":"lin","rhs":"lin"}' '{"id":2,"op":"stats"}' \
    | ./target/release/omq-serve --cache-dir "$ART_DIR" --threads 1)
echo "$ART_RUN1" | sed -n 3p | jq -e '.artifact_disk.stores >= 1' >/dev/null || {
    echo "serve restart smoke: first run persisted nothing: $ART_RUN1" >&2
    exit 1
}
echo "$ART_RUN2" | sed -n 3p | jq -e '
    .artifact_disk.hits >= 1 and .artifact_disk.stores == 0
' >/dev/null || {
    echo "serve restart smoke: second run missed the disk tier: $ART_RUN2" >&2
    exit 1
}
[ "$(echo "$ART_RUN1" | sed -n 2p)" = "$(echo "$ART_RUN2" | sed -n 2p)" ] || {
    echo "serve restart smoke: rehydrated answer differs from the cold one" >&2
    echo "$ART_RUN1" | sed -n 2p >&2
    echo "$ART_RUN2" | sed -n 2p >&2
    exit 1
}

echo "==> serve bench (writes BENCH_serve.json)"
cargo run -q --release -p omq-bench --bin serve_bench
[ "$(jq length BENCH_serve.json)" -ge 5 ] || {
    echo "BENCH_serve.json has fewer rows than the committed sweep" >&2
    exit 1
}
jq -e 'map(select(.workload == "serve:summary")) | .[0].speedup_warm_over_cold >= 10' \
    BENCH_serve.json >/dev/null || {
    echo "warm/cold containment speedup fell below the 10x floor" >&2
    exit 1
}
jq -e '[.[] | select(has("plans_reoptimized"))] | length > 0' \
    BENCH_serve.json >/dev/null || {
    echo "BENCH_serve.json has no rows with the planner counters (plans_reoptimized)" >&2
    exit 1
}
for row in \
    "serve:open-loop contains 1x shed" "serve:open-loop contains 1x noshed" \
    "serve:open-loop contains 2x shed" "serve:open-loop contains 2x noshed" \
    "serve:open-loop contains 4x shed" "serve:open-loop contains 4x noshed"; do
    if ! grep -q "$row" BENCH_serve.json; then
        echo "BENCH_serve.json is missing the '$row' open-loop row" >&2
        exit 1
    fi
done
# The point of admission control, stated as a gate: under 4x overload the
# answered-request tail with shedding stays below the unbounded noshed
# tail, and the shed row actually shed something (otherwise the comparison
# is vacuous).
jq -e '
    (map(select(.workload == "serve:open-loop contains 4x shed")) | .[0]) as $s
    | (map(select(.workload == "serve:open-loop contains 4x noshed")) | .[0]) as $n
    | $s.p99_us < $n.p99_us and $s.shed_pct > 0 and $n.shed_pct == 0
' BENCH_serve.json >/dev/null || {
    echo "open-loop 4x overload: shedding no longer bounds the p99 tail" >&2
    exit 1
}

echo "==> store bench (writes BENCH_store.json)"
cargo run -q --release -p omq-bench --bin store_bench
for row in \
    "store:assert chain=32 k=8 incremental" "store:assert chain=32 k=8 rechase" \
    "store:retract chain=32 mid dred" "store:compact chain=32 threshold=8"; do
    if ! grep -q "$row" BENCH_store.json; then
        echo "BENCH_store.json is missing the '$row' row" >&2
        exit 1
    fi
done
jq -e 'map(select(.workload == "store:summary"))
    | .[0].speedup_incremental_over_rechase >= 5' BENCH_store.json >/dev/null || {
    echo "incremental maintenance fell below the 5x speedup floor over re-chasing" >&2
    exit 1
}
# The maintenance counters are deterministic for the fixed workload: 8
# single-fact asserts resume the fixpoint 8 times and leave 40 novelty
# rows (32 base + 8 extension edges, threshold 0 = no auto-compaction).
jq -e 'map(select(.workload == "store:assert chain=32 k=8 incremental")) | .[0]
    | .novelty_size == 40 and .compactions == 0
      and .incremental_resumes == 8 and .full_rechases == 1' \
    BENCH_store.json >/dev/null || {
    echo "store:assert incremental row lost its novelty/maintenance counters" >&2
    exit 1
}
jq -e 'map(select(.workload == "store:retract chain=32 mid dred")) | .[0]
    | .dred_deleted >= 1 and has("rederived")' BENCH_store.json >/dev/null || {
    echo "store:retract row lost its DRed counters (dred_deleted/rederived)" >&2
    exit 1
}
jq -e 'map(select(.workload == "store:compact chain=32 threshold=8")) | .[0]
    | .compactions >= 1 and .novelty_size == 0' BENCH_store.json >/dev/null || {
    echo "store:compact row shows no compactions (threshold 8 must trigger)" >&2
    exit 1
}

echo "==> phase breakdown present in every BENCH row"
# The default-features build records a per-phase breakdown for every bench
# row (perf_smoke and serve_bench both run one instrumented pass per row);
# a row without any phase_*_us key means a workload escaped instrumentation.
for bench in BENCH_chase.json BENCH_rewrite.json BENCH_serve.json BENCH_guarded.json BENCH_store.json; do
    jq -e 'all(.[]; [keys[] | select(test("^phase_.*_us$"))] | length > 0)' \
        "$bench" >/dev/null || {
        echo "$bench has rows without a phase_*_us breakdown" >&2
        exit 1
    }
done

echo "==> bench diff vs committed baseline"
python3 scripts/bench_diff.py || true

echo "CI OK"
