#!/usr/bin/env bash
# Local CI gate: formatting, lints, the tier-1 test suite, and the perf
# smoke benchmark. Run from the repository root:
#
#   scripts/ci.sh
#
# The perf smoke step rewrites BENCH_chase.json; commit the refreshed file
# when the counters change intentionally.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --release -- -D warnings

echo "==> tier-1: cargo build --release && cargo test"
cargo build --release
cargo test -q --release --workspace

echo "==> perf smoke (writes BENCH_chase.json)"
cargo run -q --release -p omq-bench --bin perf_smoke

echo "CI OK"
