#!/usr/bin/env python3
"""Diff the working-tree BENCH_*.json files against the committed baseline.

Usage:
    scripts/bench_diff.py [--strict] [FILE ...]

With no FILE arguments, every ``BENCH_*.json`` in the repository root is
diffed against ``git show HEAD:<file>``. Records are matched by their
``workload`` key; for each match the wall-clock delta is reported, and any
drift in a *counter* column is flagged — counters are deterministic, so a
counter drift is a semantics change, not noise. Timing-derived fields are
never counters: any key ending in ``_ms``, ``_us`` or ``_pct``, or
starting with ``speedup`` (the BENCH_serve.json throughput ratios), is
noise. That rule covers the per-phase columns (``phase_*_us``,
``phase_*_p50_us``, ``phase_*_p99_us``), the best-of-N spread
(``wall_min_ms`` / ``wall_max_ms``) and the open-loop shed rates
(``shed_pct`` — how many arrivals the admission controller refused is a
function of timing, not semantics) without special cases.

Two report-only markers refine the noise story:

* ``NOISY`` — the current row's best-of-N spread is wide
  (``wall_max_ms > 1.5 * wall_min_ms``), so its wall-clock delta should
  not be trusted; also emitted when ``wall_min_ms`` (the best run, the
  most noise-resistant wall figure) regressed by more than 20% vs the
  baseline while still under any ceiling — a slow creep the ceiling
  tripwire would miss;
* ``PHASE`` — a phase's *share* of the row's total phase time moved by
  more than 0.15 vs the baseline. Phase totals come from a separate
  instrumented pass (see ``omq_bench::obsjson``), so absolute phase times
  are not comparable to ``wall_ms`` — shares are the stable signal.

Exit status: 0 normally; with ``--strict``, 1 if any counter drifted or any
baseline workload disappeared (wall-clock changes, NOISY and PHASE markers
never fail the diff).
"""

import glob
import json
import os
import re
import subprocess
import sys

# Wall-clock ceilings for headline rows, in ms. Unlike counter drifts these
# are noise-tolerant tripwires (set well above the committed numbers); a
# breach is still reported as a hard drift because it means a tracked
# optimisation regressed, not that the machine was busy.
WALL_CEILINGS = {
    # Committed best-of-3 is ~0.36 s with noise peaks around 0.42 s; the
    # ceiling is the tightened post-adaptive-planner tripwire (was 700).
    "rewrite:E3 nr strata=4": 600.0,
    # Committed best-of-3 is ~0.21 ms (propositional bitset fast path +
    # relaxation pruning; pre-optimization baseline 1.087 ms). Mirrors the
    # jq gate in scripts/ci.sh, slightly looser since wall_ms (not the
    # best-of minimum) is what the diff checks.
    "guarded:tiling etp k=2 m=2": 0.9,
    # Committed best-of-3 is ~0.45 ms (8 watermark-resumed asserts on the
    # chain-32 TC store); the naive re-chase comparator runs ~3.6 ms, so a
    # breach means incrementality itself regressed, not just the machine.
    "store:assert chain=32 k=8 incremental": 2.5,
}

# Tail-latency ceilings for the open-loop serve rows, in µs on ``p99_us``.
# The whole point of admission control is that the answered-request tail
# stays bounded under overload: with watermark 16 an admitted request waits
# at most ~16 service times (~5 ms committed, vs ~50 ms unbounded in the
# matching `noshed` row). The ceiling is set several times above the
# committed figure so only a broken admission path — not a busy machine —
# can breach it.
P99_CEILINGS = {
    "serve:open-loop contains 2x shed": 30000.0,
    "serve:open-loop contains 4x shed": 30000.0,
}


def load_baseline(path):
    """The committed version of *path*, or None if it is not in HEAD."""
    rel = os.path.relpath(path)
    try:
        out = subprocess.run(
            ["git", "show", f"HEAD:{rel}"],
            capture_output=True,
            check=True,
        ).stdout
    except subprocess.CalledProcessError:
        return None
    return json.loads(out)


def is_noise(key):
    """Timing-derived fields — reported but never treated as counters."""
    return (
        key == "workload"
        or key.endswith("_ms")
        or key.endswith("_us")
        or key.endswith("_pct")
        or key.endswith("_ratio")
        or key.startswith("speedup")
    )


def by_workload(records):
    return {r["workload"]: r for r in records}


# A phase *total* column: phase_<name>_us, excluding the percentile columns.
PHASE_TOTAL = re.compile(r"^phase_.*_us$")
PHASE_PCTL = re.compile(r"_p\d+_us$")


def phase_shares(record):
    """Each phase total as a share of the row's summed phase time."""
    totals = {
        k: v
        for k, v in record.items()
        if PHASE_TOTAL.match(k) and not PHASE_PCTL.search(k)
    }
    grand = sum(totals.values())
    if not grand:
        return {}
    return {k: v / grand for k, v in totals.items()}


def diff_file(path):
    """Diffs one file; returns the number of hard (counter) drifts."""
    with open(path, encoding="utf-8") as f:
        current = by_workload(json.load(f))
    baseline_records = load_baseline(path)
    print(f"== {path}")
    if baseline_records is None:
        print("   (no committed baseline; skipping)")
        return 0
    baseline = by_workload(baseline_records)

    drifts = 0
    for name, base in baseline.items():
        cur = current.get(name)
        if cur is None:
            print(f"   MISSING  {name}: present in baseline, absent now")
            drifts += 1
            continue
        b_ms, c_ms = base.get("wall_ms", 0.0), cur.get("wall_ms", 0.0)
        rel = (c_ms - b_ms) / b_ms * 100 if b_ms else float("inf")
        marker = " " if abs(rel) < 20 else ("+" if rel > 0 else "-")
        print(f"  {marker} {name:<40} {b_ms:9.3f} -> {c_ms:9.3f} ms ({rel:+6.1f}%)")
        lo, hi = cur.get("wall_min_ms"), cur.get("wall_max_ms")
        if lo is not None and hi is not None and hi > 1.5 * lo:
            print(
                f"   NOISY    {name}: best-of spread {lo:.3f}..{hi:.3f} ms"
                " — wall delta untrustworthy"
            )
        b_lo = base.get("wall_min_ms")
        if b_lo and lo is not None and lo > 1.2 * b_lo:
            print(
                f"   NOISY    {name}: wall_min_ms {b_lo:.3f} -> {lo:.3f} ms"
                " (best run regressed >20% vs baseline; report-only)"
            )
        base_shares = phase_shares(base)
        for key, share in sorted(phase_shares(cur).items()):
            b_share = base_shares.get(key)
            if b_share is not None and abs(share - b_share) > 0.15:
                print(
                    f"   PHASE    {name}: {key} share"
                    f" {b_share:.2f} -> {share:.2f}"
                )
        ceiling = WALL_CEILINGS.get(name)
        if ceiling is not None and c_ms > ceiling:
            print(f"   CEILING  {name}: wall_ms {c_ms:.3f} > {ceiling:.0f}")
            drifts += 1
        p99_ceiling = P99_CEILINGS.get(name)
        c_p99 = cur.get("p99_us")
        if p99_ceiling is not None and c_p99 is not None and c_p99 > p99_ceiling:
            print(
                f"   CEILING  {name}: p99_us {c_p99:.1f} > {p99_ceiling:.0f}"
                " — the shed tail is no longer bounded"
            )
            drifts += 1
        for key in sorted(set(base) | set(cur)):
            if is_noise(key):
                continue
            if base.get(key) != cur.get(key):
                print(
                    f"   COUNTER  {name}: {key} {base.get(key)} -> {cur.get(key)}"
                )
                drifts += 1
    for name in current:
        if name not in baseline:
            print(f"   NEW      {name}: not in baseline")
    return drifts


def main():
    args = sys.argv[1:]
    strict = "--strict" in args
    files = [a for a in args if a != "--strict"]
    if not files:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        files = sorted(glob.glob(os.path.join(root, "BENCH_*.json")))
    if not files:
        print("no BENCH_*.json files found", file=sys.stderr)
        sys.exit(1)
    drifts = sum(diff_file(f) for f in files)
    if drifts:
        print(f"{drifts} counter drift(s) — semantics changed, not noise")
        if strict:
            sys.exit(1)


if __name__ == "__main__":
    main()
