//! Quickstart: define an ontology-mediated query, evaluate it, rewrite it,
//! and check containment — the core loop of the library.
//!
//! Run with: `cargo run --example quickstart`

use omq::core::{contains, ContainmentConfig, ContainmentResult, EvalConfig};
use omq::model::display::{render_cq, render_instance, render_tgd};
use omq::model::{parse_program, parse_tgd, Instance, Omq, Schema};
use omq::rewrite::{xrewrite, XRewriteConfig};

fn main() {
    // ---------------------------------------------------------------
    // 1. An ontology and two queries, in the textual rule syntax.
    //    (This is Example 1 of Barceló–Berger–Pieris, PODS 2018.)
    // ---------------------------------------------------------------
    let prog = parse_program(
        "# every P-node has an R-successor, whose endpoint is a P-node;
         # T is a subclass of P
         P(X) -> exists Y . R(X,Y)
         R(X,Y) -> P(Y)
         T(X) -> P(X)

         q(X) :- R(X,Y), P(Y)
         r(X) :- P(X)
         r(X) :- T(X)",
    )
    .expect("parses");
    let mut voc = prog.voc.clone();

    // The data schema: databases only use P and T.
    let schema = Schema::from_preds([voc.pred_id("P").unwrap(), voc.pred_id("T").unwrap()]);

    println!("Ontology Σ:");
    for t in &prog.tgds {
        println!("  {}", render_tgd(&voc, t));
    }

    let q = Omq::new(
        schema.clone(),
        prog.tgds.clone(),
        prog.query("q").unwrap().clone(),
    );
    let r = Omq::new(
        schema.clone(),
        prog.tgds.clone(),
        prog.query("r").unwrap().clone(),
    );

    // ---------------------------------------------------------------
    // 2. Evaluate Q over a small database (certain answers).
    // ---------------------------------------------------------------
    let mut db = Instance::new();
    for fact in ["T(ada)", "P(bob)"] {
        let t = parse_tgd(&mut voc, &format!("true -> {fact}")).unwrap();
        for a in t.head {
            db.insert(a);
        }
    }
    println!("\nDatabase D:\n{}", render_instance(&voc, &db));

    let out = omq::core::evaluate(&q, &db, &mut voc, &EvalConfig::default());
    println!(
        "\nQ(D) under {} evaluation ({:?}):",
        out.language, out.guarantee
    );
    let mut answers: Vec<String> = out
        .answers
        .iter()
        .map(|t| {
            t.iter()
                .map(|c| voc.const_name(*c).to_owned())
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();
    answers.sort();
    for a in &answers {
        println!("  q({a})");
    }

    // ---------------------------------------------------------------
    // 3. Rewrite Q into a UCQ over the data schema (XRewrite, §4).
    // ---------------------------------------------------------------
    let rw = xrewrite(&q, &mut voc, &XRewriteConfig::default()).expect("linear => terminates");
    println!("\nUCQ rewriting of Q over {{P, T}}:");
    for d in &rw.ucq.disjuncts {
        println!("  {}", render_cq(&voc, "q", d));
    }

    // ---------------------------------------------------------------
    // 4. Containment: Q ≡ R (the rewriting of Q is exactly R's UCQ).
    // ---------------------------------------------------------------
    let cfg = ContainmentConfig::default();
    let fwd = contains(&q, &r, &mut voc, &cfg).unwrap();
    let bwd = contains(&r, &q, &mut voc, &cfg).unwrap();
    println!(
        "\nQ ⊆ R: {:?}   (LHS language {}, {} witnesses checked)",
        fwd.result.is_contained(),
        fwd.lhs_language,
        fwd.witnesses_checked
    );
    println!("R ⊆ Q: {:?}", bwd.result.is_contained());

    // A query R is NOT contained in: asking for T directly.
    let prog2 = parse_program("s(X) :- T(X)").unwrap();
    // NOTE: parse into the same vocabulary by re-parsing the line.
    let (_, s_cq) = omq::model::parse_query(&mut voc, "s(X) :- T(X)").unwrap();
    drop(prog2);
    let s = Omq::new(schema, prog.tgds.clone(), omq::model::Ucq::from_cq(s_cq));
    match contains(&r, &s, &mut voc, &cfg).unwrap().result {
        ContainmentResult::NotContained(w) => {
            println!(
                "\nR ⊄ S, witness database:\n{}",
                render_instance(&voc, &w.database)
            );
        }
        other => println!("unexpected: {other:?}"),
    }
}
