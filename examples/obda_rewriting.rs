//! OBDA pipeline: compile an ontology-mediated query into a UCQ once, then
//! answer it over plain databases with no reasoning at query time — the
//! deployment story UCQ rewritability (Def. 1) enables.
//!
//! The scenario is a small hospital-records integration: heterogeneous
//! sources record staff in different ways; the ontology aligns them.
//!
//! Run with: `cargo run --example obda_rewriting`

use omq::chase::eval_ucq;
use omq::core::{is_ucq_rewritable, ContainmentConfig, RewritabilityResult};
use omq::model::display::{render_cq, render_instance};
use omq::model::{parse_program, parse_tgd, Instance, Omq, Schema, Vocabulary};

fn db(voc: &mut Vocabulary, facts: &[&str]) -> Instance {
    let mut inst = Instance::new();
    for f in facts {
        let t = parse_tgd(voc, &format!("true -> {f}")).unwrap();
        for a in t.head {
            inst.insert(a);
        }
    }
    inst
}

fn main() {
    // Sources: Surgeon(x), Nurse(x), WorksAt(x, ward), HeadOf(x, ward).
    // Ontology: surgeons and nurses are medical staff; heads of wards work
    // at them; every staff member works somewhere (possibly unrecorded).
    let prog = parse_program(
        "Surgeon(X) -> Staff(X)
         Nurse(X) -> Staff(X)
         HeadOf(X,W) -> WorksAt(X,W)
         HeadOf(X,W) -> Staff(X)
         Staff(X) -> exists W . WorksAt(X,W)

         assigned(X) :- Staff(X), WorksAt(X,W)",
    )
    .unwrap();
    let mut voc = prog.voc.clone();
    let schema = Schema::from_preds(
        ["Surgeon", "Nurse", "HeadOf", "WorksAt"].map(|n| voc.pred_id(n).unwrap()),
    );
    let omq = Omq::new(
        schema,
        prog.tgds.clone(),
        prog.query("assigned").unwrap().clone(),
    );

    // ---- compile once ----
    let rewriting = match is_ucq_rewritable(&omq, &mut voc, &ContainmentConfig::default()) {
        RewritabilityResult::Rewritable(ucq) => ucq,
        RewritabilityResult::Unknown { .. } => unreachable!("linear ontologies are rewritable"),
    };
    println!(
        "Compiled the OMQ into a UCQ with {} disjuncts over the source schema:",
        rewriting.disjuncts.len()
    );
    for d in &rewriting.disjuncts {
        println!("  {}", render_cq(&voc, "assigned", d));
    }

    // ---- answer many databases with plain UCQ evaluation ----
    let sources = [
        db(
            &mut voc,
            &["Surgeon(garcia)", "WorksAt(garcia, or1)", "Nurse(chen)"],
        ),
        db(&mut voc, &["HeadOf(patel, icu)"]),
        db(&mut voc, &["WorksAt(kim, lab)"]), // not known to be staff
    ];
    for (i, d) in sources.iter().enumerate() {
        println!("\nSource {}:\n{}", i + 1, render_instance(&voc, d));
        let answers = eval_ucq(&rewriting, d);
        let mut names: Vec<&str> = answers.iter().map(|t| voc.const_name(t[0])).collect();
        names.sort();
        println!("  assigned = {names:?}");
    }
    // Source 1: garcia (surgeon, thus staff, works somewhere) and chen
    //           (nurse: the ontology invents the workplace) both answer.
    // Source 2: patel answers through HeadOf ⊑ WorksAt ∧ Staff.
    // Source 3: kim does not answer — WorksAt alone does not imply Staff.
}
