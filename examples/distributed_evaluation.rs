//! Distribution over components (§7.1): statically certify that an OMQ can
//! be evaluated per-component with no coordination, then actually do it in
//! parallel with scoped threads and check the union against the global
//! answer.
//!
//! Run with: `cargo run --example distributed_evaluation`

use std::collections::HashSet;

use omq::core::{distributes_over_components, evaluate, ContainmentConfig, EvalConfig};
use omq::model::{parse_program, parse_tgd, ConstId, Instance, Omq, Schema, Vocabulary};

fn db(voc: &mut Vocabulary, facts: &[&str]) -> Instance {
    let mut inst = Instance::new();
    for f in facts {
        let t = parse_tgd(voc, &format!("true -> {f}")).unwrap();
        for a in t.head {
            inst.insert(a);
        }
    }
    inst
}

fn eval_answers(omq: &Omq, d: &Instance, voc: &Vocabulary) -> HashSet<Vec<ConstId>> {
    let mut voc = voc.clone();
    evaluate(omq, d, &mut voc, &EvalConfig::default()).answers
}

fn main() {
    // A social-network reachability query: "X follows someone who posts".
    // Connected query => distributes over components.
    let prog = parse_program(
        "Author(X,P) -> Posts(X)
         q(X) :- Follows(X,Y), Posts(Y)",
    )
    .unwrap();
    let mut voc = prog.voc.clone();
    let schema =
        Schema::from_preds(["Follows", "Author", "Posts"].map(|n| voc.pred_id(n).unwrap()));
    let omq = Omq::new(schema, prog.tgds.clone(), prog.query("q").unwrap().clone());

    let verdict =
        distributes_over_components(&omq, &mut voc, &ContainmentConfig::default()).unwrap();
    println!("static analysis: {verdict:?}");

    // A database with three islands of users.
    let d = db(
        &mut voc,
        &[
            "Follows(a1,a2)",
            "Author(a2, p1)",
            "Follows(b1,b2)", // b2 never posts
            "Follows(c1,c2)",
            "Follows(c2,c1)",
            "Author(c1, p2)",
        ],
    );
    let components = d.components();
    println!("database splits into {} components", components.len());

    // Coordination-free evaluation: one worker per component.
    let voc_snapshot = voc.clone();
    let omq_ref = &omq;
    let mut distributed: HashSet<Vec<ConstId>> = HashSet::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = components
            .iter()
            .map(|comp| {
                let voc = voc_snapshot.clone();
                scope.spawn(move || eval_answers(omq_ref, comp, &voc))
            })
            .collect();
        for h in handles {
            distributed.extend(h.join().unwrap());
        }
    });

    let global = eval_answers(&omq, &d, &voc);
    println!("global answers: {:?}", names(&global, &voc));
    println!(
        "union of per-component answers: {:?}",
        names(&distributed, &voc)
    );
    assert_eq!(global, distributed, "certified distribution must hold");
    println!("✓ distributed evaluation agrees with the global one");

    // Contrast: a disconnected query does NOT distribute.
    let prog2 = parse_program("p :- Posts(X), Follows(Y,Z)").unwrap();
    let mut voc2 = prog2.voc.clone();
    let schema2 = Schema::from_preds(["Posts", "Follows"].map(|n| voc2.pred_id(n).unwrap()));
    let omq2 = Omq::new(schema2, vec![], prog2.query("p").unwrap().clone());
    let verdict2 =
        distributes_over_components(&omq2, &mut voc2, &ContainmentConfig::default()).unwrap();
    println!("\ndisconnected conjunction: {verdict2:?}");
}

fn names(answers: &HashSet<Vec<ConstId>>, voc: &Vocabulary) -> Vec<String> {
    let mut out: Vec<String> = answers
        .iter()
        .map(|t| {
            t.iter()
                .map(|c| voc.const_name(*c).to_owned())
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();
    out.sort();
    out
}
