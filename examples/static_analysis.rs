//! A static-analysis tour: language detection, satisfiability, rewriting
//! bounds, equivalence checking, and the evaluation⇄containment reductions
//! — everything a query optimizer would ask about a set of OMQs.
//!
//! Run with: `cargo run --example static_analysis`

use omq::classes::classify;
use omq::core::{contains, detect_language, is_unsatisfiable, ContainmentConfig, EvalConfig};
use omq::model::{parse_program, Omq, Schema, Ucq};
use omq::rewrite::{bound_linear, bound_nonrecursive, bound_sticky};

fn main() {
    let suite: &[(&str, &str, &[&str])] = &[
        (
            "inclusion dependencies (linear)",
            "Emp(X,D) -> exists M . Mgr(D,M)\n\
             Mgr(D,M) -> Emp(M,D)\n\
             q :- Emp(X,D), Mgr(D,M)\n",
            &["Emp", "Mgr"],
        ),
        (
            "layered ETL (non-recursive)",
            "Raw(X) -> Clean(X)\n\
             Clean(X), Audit(X) -> Ready(X)\n\
             q(X) :- Ready(X)\n",
            &["Raw", "Audit"],
        ),
        (
            "join-propagating (sticky)",
            "R(X,Y), P(Y,Z) -> exists W . T(X,Y,W)\n\
             T(X,Y,W) -> R(Y,X)\n\
             q :- T(X,Y,W)\n",
            &["R", "P"],
        ),
        (
            "tree-expanding (guarded, not sticky)",
            "G(X,Y,Z), R(X,Y) -> exists W . G(Y,Z,W), R(Y,Z)\n\
             q :- R(X,Y), R(Y,Z)\n",
            &["G", "R"],
        ),
        (
            "transitive closure (Datalog: containment undecidable)",
            "E(X,Y) -> T(X,Y)\n\
             E(X,Y), T(Y,Z) -> T(X,Z)\n\
             q(X,Y) :- T(X,Y)\n",
            &["E"],
        ),
    ];

    println!(
        "{:<48} {:<8} {:>9} {:>7} {:>12}",
        "ontology", "language", "rewr.bnd", "unsat?", "classes"
    );
    println!("{}", "-".repeat(90));
    for (name, text, data) in suite {
        let prog = parse_program(text).unwrap();
        let mut voc = prog.voc.clone();
        let schema = Schema::from_preds(data.iter().map(|n| voc.pred_id(n).unwrap()));
        let omq = Omq::new(schema, prog.tgds.clone(), prog.query("q").unwrap().clone());
        let lang = detect_language(&omq);
        let report = classify(&omq.sigma);
        let bound = match lang {
            omq::core::OmqLanguage::Linear => bound_linear(&omq).to_string(),
            omq::core::OmqLanguage::NonRecursive => bound_nonrecursive(&omq).to_string(),
            omq::core::OmqLanguage::Sticky => bound_sticky(&omq, &voc).to_string(),
            _ => "—".to_owned(),
        };
        let unsat = is_unsatisfiable(&omq, &mut voc, &EvalConfig::default());
        let mut tags = Vec::new();
        if report.guarded {
            tags.push("G");
        }
        if report.linear {
            tags.push("L");
        }
        if report.non_recursive {
            tags.push("NR");
        }
        if report.sticky {
            tags.push("S");
        }
        if report.full {
            tags.push("F");
        }
        println!(
            "{:<48} {:<8} {:>9} {:>7} {:>12}",
            name,
            lang.to_string(),
            bound,
            format!("{unsat:?}"),
            tags.join(",")
        );
    }

    // ---- equivalence-based optimization ----
    // Two formulations of the same question; the ontology makes them
    // equivalent, so a planner may pick the cheaper one.
    println!("\nEquivalence check (query optimization):");
    let prog = parse_program(
        "Mgr(D,M) -> Emp(M,D)\n\
         a(M) :- Mgr(D,M), Emp(M,D)\n\
         b(M) :- Mgr(D,M)\n",
    )
    .unwrap();
    let mut voc = prog.voc.clone();
    let schema = Schema::from_preds([voc.pred_id("Mgr").unwrap(), voc.pred_id("Emp").unwrap()]);
    let qa = Omq::new(
        schema.clone(),
        prog.tgds.clone(),
        prog.query("a").unwrap().clone(),
    );
    let qb = Omq::new(schema, prog.tgds.clone(), prog.query("b").unwrap().clone());
    let cfg = ContainmentConfig::default();
    let fwd = contains(&qa, &qb, &mut voc, &cfg).unwrap();
    let bwd = contains(&qb, &qa, &mut voc, &cfg).unwrap();
    println!(
        "  a ⊆ b: {}   b ⊆ a: {}  => {}",
        fwd.result.is_contained(),
        bwd.result.is_contained(),
        if fwd.result.is_contained() && bwd.result.is_contained() {
            "equivalent: drop the join from `a`"
        } else {
            "not equivalent"
        }
    );

    // ---- an unsatisfiable composite query is always safe to prune ----
    let dead = Omq::new(
        Schema::from_preds([voc.pred_id("Mgr").unwrap()]),
        prog.tgds.clone(),
        Ucq::new(0, vec![]),
    );
    println!(
        "  empty-union query unsatisfiable: {:?}",
        is_unsatisfiable(&dead, &mut voc, &EvalConfig::default())
    );
}
