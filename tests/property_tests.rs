//! Property-based tests over the core data structures and engines.
//!
//! Gated behind the (default-on) `proptest` feature so that
//! `--no-default-features` gives a std-only build.
#![cfg(feature = "proptest")]

use std::collections::HashMap;

use proptest::prelude::*;

use omq::chase::{
    chase, cq_canonical_form, cq_contained, cq_core, cq_equivalent, cq_isomorphic, eval_cq,
    ChaseConfig, ChaseVariant,
};
use omq::model::display::{render_cq, render_tgd};
use omq::model::{parse_query, parse_tgd, Atom, Cq, Instance, Term, Vocabulary};

/// A random CQ over a fixed binary/unary schema, described by atom specs.
#[derive(Debug, Clone)]
struct CqSpec {
    /// (use_binary, var_a, var_b) per atom; variables range over 0..4.
    atoms: Vec<(bool, u8, u8)>,
    head_var: Option<u8>,
}

fn cq_spec() -> impl Strategy<Value = CqSpec> {
    (
        prop::collection::vec((any::<bool>(), 0u8..4, 0u8..4), 1..5),
        prop::option::of(0u8..4),
    )
        .prop_map(|(atoms, head_var)| CqSpec { atoms, head_var })
}

fn build_cq(spec: &CqSpec, voc: &mut Vocabulary) -> Cq {
    let e = voc.pred("E", 2);
    let p = voc.pred("P", 1);
    let vars: Vec<_> = (0..4).map(|i| voc.var(&format!("V{i}"))).collect();
    let body: Vec<Atom> = spec
        .atoms
        .iter()
        .map(|&(bin, a, b)| {
            if bin {
                Atom::new(
                    e,
                    vec![Term::Var(vars[a as usize]), Term::Var(vars[b as usize])],
                )
            } else {
                Atom::new(p, vec![Term::Var(vars[a as usize])])
            }
        })
        .collect();
    let head = spec
        .head_var
        .and_then(|h| {
            let v = vars[h as usize];
            body.iter().any(|a| a.mentions_var(v)).then_some(v)
        })
        .into_iter()
        .collect();
    Cq::new(head, body)
}

/// A random small database over the same schema.
fn db_spec() -> impl Strategy<Value = Vec<(bool, u8, u8)>> {
    prop::collection::vec((any::<bool>(), 0u8..4, 0u8..4), 0..8)
}

fn build_db(spec: &[(bool, u8, u8)], voc: &mut Vocabulary) -> Instance {
    let e = voc.pred("E", 2);
    let p = voc.pred("P", 1);
    let consts: Vec<_> = (0..4).map(|i| voc.constant(&format!("c{i}"))).collect();
    Instance::from_atoms(spec.iter().map(|&(bin, a, b)| {
        if bin {
            Atom::new(
                e,
                vec![
                    Term::Const(consts[a as usize]),
                    Term::Const(consts[b as usize]),
                ],
            )
        } else {
            Atom::new(p, vec![Term::Const(consts[a as usize])])
        }
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The core of a CQ is always equivalent to it and never larger.
    #[test]
    fn core_is_equivalent_and_minimal(spec in cq_spec()) {
        let mut voc = Vocabulary::new();
        let q = build_cq(&spec, &mut voc);
        let core = cq_core(&q);
        prop_assert!(core.body.len() <= q.body.len());
        prop_assert!(cq_equivalent(&q, &core));
        // Cores are fixpoints.
        let core2 = cq_core(&core);
        prop_assert_eq!(core2.body.len(), core.body.len());
    }

    /// Chandra–Merlin containment is sound for evaluation: if q1 ⊆ q2 then
    /// q1's answers are a subset of q2's on every database.
    #[test]
    fn containment_sound_for_evaluation(
        s1 in cq_spec(),
        s2 in cq_spec(),
        dbs in db_spec(),
    ) {
        let mut voc = Vocabulary::new();
        let q1 = build_cq(&s1, &mut voc);
        let q2 = build_cq(&s2, &mut voc);
        if q1.head.len() == q2.head.len() && cq_contained(&q1, &q2) {
            let d = build_db(&dbs, &mut voc);
            let a1 = eval_cq(&q1, &d);
            let a2 = eval_cq(&q2, &d);
            prop_assert!(a1.is_subset(&a2), "q1 ⊆ q2 but answers leak");
        }
    }

    /// Isomorphic CQs are equivalent; equivalence of cores of isomorphic
    /// queries is symmetric.
    #[test]
    fn isomorphism_implies_equivalence(spec in cq_spec()) {
        let mut voc = Vocabulary::new();
        let q = build_cq(&spec, &mut voc);
        // Rename all variables.
        let fresh: HashMap<_, _> = q
            .vars()
            .into_iter()
            .map(|v| (v, voc.fresh_var("w")))
            .collect();
        let renamed = q.map_terms(|t| match t {
            Term::Var(v) => Term::Var(fresh[&v]),
            other => other,
        });
        // NOTE: cq_isomorphic demands head-position identity, which a full
        // renaming breaks for non-Boolean queries; restrict to Boolean.
        if q.is_boolean() {
            prop_assert!(cq_isomorphic(&q, &renamed));
        }
        prop_assert!(cq_equivalent(&q, &renamed));
    }

    /// Restricted and oblivious chase agree on certain answers for
    /// terminating (weakly acyclic, here: existential-free) ontologies.
    #[test]
    fn chase_variants_agree_on_full_tgds(dbs in db_spec()) {
        let mut voc = Vocabulary::new();
        let sigma = vec![
            parse_tgd(&mut voc, "E(X,Y) -> P(X)").unwrap(),
            parse_tgd(&mut voc, "E(X,Y), P(Y) -> E(Y,X)").unwrap(),
        ];
        let d = build_db(&dbs, &mut voc);
        let (_, q) = parse_query(&mut voc, "q(X) :- E(X,Y), P(Y)").unwrap();
        let restricted = chase(&d, &sigma, &mut voc, &ChaseConfig::default());
        let cfg = ChaseConfig { variant: ChaseVariant::Oblivious, ..Default::default() };
        let oblivious = chase(&d, &sigma, &mut voc, &cfg);
        prop_assert!(restricted.complete && oblivious.complete);
        prop_assert_eq!(
            eval_cq(&q, &restricted.instance),
            eval_cq(&q, &oblivious.instance)
        );
    }

    /// Canonical labeling decides `≃`: two random CQs have equal canonical
    /// forms exactly when they are isomorphic (whenever both stay within
    /// the symmetry budget), and the form is invariant under a full
    /// variable renaming.
    #[test]
    fn canonical_form_decides_isomorphism(s1 in cq_spec(), s2 in cq_spec()) {
        let mut voc = Vocabulary::new();
        let q1 = build_cq(&s1, &mut voc);
        let q2 = build_cq(&s2, &mut voc);
        let budget = 5_040;
        if let (Some(f1), Some(f2)) =
            (cq_canonical_form(&q1, budget), cq_canonical_form(&q2, budget))
        {
            prop_assert_eq!(f1 == f2, cq_isomorphic(&q1, &q2));
        }
        let fresh: HashMap<_, _> = q1
            .vars()
            .into_iter()
            .map(|v| (v, voc.fresh_var("w")))
            .collect();
        let renamed = q1.map_terms(|t| match t {
            Term::Var(v) => Term::Var(fresh[&v]),
            other => other,
        });
        prop_assert_eq!(
            cq_canonical_form(&q1, budget),
            cq_canonical_form(&renamed, budget)
        );
    }

    /// Rendering and re-parsing a random CQ is the identity.
    #[test]
    fn cq_render_roundtrip(spec in cq_spec()) {
        let mut voc = Vocabulary::new();
        let q = build_cq(&spec, &mut voc);
        let text = render_cq(&voc, "q", &q);
        let (_, q2) = parse_query(&mut voc, &text).unwrap();
        prop_assert_eq!(q, q2);
    }

    /// Rendering and re-parsing a random tgd is the identity.
    #[test]
    fn tgd_render_roundtrip(body in cq_spec(), head in cq_spec()) {
        let mut voc = Vocabulary::new();
        let b = build_cq(&body, &mut voc);
        let h = build_cq(&head, &mut voc);
        let tgd = omq::model::Tgd::new(b.body, h.body);
        let text = render_tgd(&voc, &tgd);
        let tgd2 = parse_tgd(&mut voc, &text).unwrap();
        prop_assert_eq!(tgd, tgd2);
    }

    /// The rewriting-based and chase-based evaluations agree on a
    /// non-recursive ontology for arbitrary databases (Def. 1 in action).
    #[test]
    fn rewriting_agrees_with_chase_on_nr(dbs in db_spec()) {
        let mut voc = Vocabulary::new();
        let sigma = vec![
            parse_tgd(&mut voc, "E(X,Y) -> exists Z . F(Y,Z)").unwrap(),
            parse_tgd(&mut voc, "F(X,Y) -> G(X)").unwrap(),
            parse_tgd(&mut voc, "P(X) -> G(X)").unwrap(),
        ];
        let d = build_db(&dbs, &mut voc);
        let (_, q) = parse_query(&mut voc, "q(X) :- G(X)").unwrap();
        let e = voc.pred_id("E").unwrap();
        let p = voc.pred_id("P").unwrap();
        let omq = omq::model::Omq::new(
            omq::model::Schema::from_preds([e, p]),
            sigma,
            omq::model::Ucq::from_cq(q),
        );
        let via_rw = omq::rewrite::certain_answers_via_rewriting(
            &omq, &d, &mut voc, &Default::default(),
        ).unwrap();
        let via_chase = omq::chase::certain_answers_via_chase(
            &omq, &d, &mut voc, &ChaseConfig::default(),
        ).unwrap();
        prop_assert_eq!(via_rw, via_chase);
    }
}
