//! End-to-end integration tests spanning all crates: the paper's hardness
//! constructions are run through the full containment pipeline and checked
//! against brute-force ground truth.

use omq::core::{contains, ContainmentConfig, ContainmentResult};
use omq::reductions::tiling::all_pairs;
use omq::reductions::{etp_to_containment, prop18_family, tiling_to_fnr_linear, Etp, ExpTiling};

/// Theorem 16, cross-checked: the ETP instance has a solution iff the
/// constructed (NR, CQ) OMQs are contained. This exercises XRewrite on a
/// deep non-recursive ontology (including the Figure 2 rules), witness
/// freezing, and stratified-chase evaluation of the right-hand side.
#[test]
fn theorem16_matches_brute_force() {
    let alt = vec![(1u8, 2u8), (2, 1)];
    let cases: Vec<(Etp, &str)> = vec![
        (
            Etp {
                k: 1,
                n: 1,
                m: 2,
                h1: vec![],
                v1: vec![],
                h2: all_pairs(2),
                v2: all_pairs(2),
            },
            "T1 never solves: containment holds vacuously",
        ),
        (
            Etp {
                k: 1,
                n: 1,
                m: 2,
                h1: all_pairs(2),
                v1: all_pairs(2),
                h2: vec![],
                v2: vec![],
            },
            "T1 always solves, T2 never: not contained",
        ),
        (
            Etp {
                k: 1,
                n: 1,
                m: 2,
                h1: all_pairs(2),
                v1: all_pairs(2),
                h2: alt.clone(),
                v2: alt.clone(),
            },
            "checkerboard T2 solves every single-tile condition: contained",
        ),
        (
            Etp {
                k: 2,
                n: 1,
                m: 2,
                h1: all_pairs(2),
                v1: all_pairs(2),
                h2: alt.clone(),
                v2: alt,
            },
            "k=2: T1 solves s=[1,1] but checkerboard T2 cannot: not contained",
        ),
    ];
    for (etp, label) in cases {
        let expected = etp.has_solution();
        let omqs = etp_to_containment(&etp);
        let mut voc = omqs.voc.clone();
        let cfg = ContainmentConfig::default();
        let out = contains(&omqs.q1, &omqs.q2, &mut voc, &cfg).expect("well-posed");
        match (&out.result, expected) {
            (ContainmentResult::Contained, true) | (ContainmentResult::NotContained(_), false) => {}
            other => panic!("{label}: expected contained={expected}, got {other:?}"),
        }
        // When not contained, the witness encodes a concrete initial
        // condition (0-ary C-facts only).
        if let ContainmentResult::NotContained(w) = &out.result {
            assert!(w.database.atoms().iter().all(|a| a.arity() == 0));
        }
    }
}

/// Theorem 34, cross-checked: the exponential-tiling instance has a
/// solution iff `Q_T ⊄ Q'_T`.
#[test]
fn theorem34_matches_brute_force() {
    let alt = vec![(1u8, 2u8), (2, 1)];
    let cases = vec![
        ExpTiling {
            n: 1,
            m: 2,
            h: alt.clone(),
            v: alt.clone(),
            s: vec![1],
        },
        ExpTiling {
            n: 1,
            m: 2,
            h: vec![],
            v: vec![],
            s: vec![],
        },
        ExpTiling {
            n: 1,
            m: 2,
            h: alt.clone(),
            v: alt.clone(),
            s: vec![1, 1], // incompatible initial condition
        },
        ExpTiling {
            n: 1,
            m: 2,
            h: all_pairs(2),
            v: all_pairs(2),
            s: vec![2, 1],
        },
    ];
    for t in cases {
        let expected = t.has_solution();
        let omqs = tiling_to_fnr_linear(&t);
        let mut voc = omqs.voc.clone();
        let cfg = ContainmentConfig::default();
        let out = contains(&omqs.q_t, &omqs.q_violation, &mut voc, &cfg).expect("well-posed");
        assert_eq!(
            out.result.is_not_contained(),
            expected,
            "tiling {:?}/{:?} s={:?}: {:?}",
            t.h,
            t.v,
            t.s,
            out.result
        );
    }
}

/// Props. 15/18: the containment witness grows exponentially — the
/// counterexample database for `Qⁿ ⊄ Q_⊥` has exactly `2ⁿ` atoms.
#[test]
fn witness_families_exhibit_exponential_witnesses() {
    for n in 1..=3usize {
        let (q1, mut voc) = prop18_family(n);
        let z0 = voc.fresh_pred("Zunsat", 1);
        let x = voc.var("Xu");
        let q2 = omq::model::Omq::new(
            q1.data_schema.clone(),
            vec![],
            omq::model::Ucq::from_cq(omq::model::Cq::boolean(vec![omq::model::Atom::new(
                z0,
                vec![omq::model::Term::Var(x)],
            )])),
        );
        let out = contains(&q1, &q2, &mut voc, &ContainmentConfig::default()).unwrap();
        match out.result {
            ContainmentResult::NotContained(w) => {
                assert_eq!(
                    w.database.len(),
                    1 << n,
                    "n={n}: witness should have 2^n atoms"
                );
            }
            other => panic!("expected witness, got {other:?}"),
        }
        assert_eq!(out.max_witness_size, 1 << n);
    }
}

/// The small-witness containment algorithm agrees with classical CQ
/// containment when the ontologies are empty.
#[test]
fn empty_ontology_agrees_with_chandra_merlin() {
    let prog = omq::model::parse_program(
        "p :- E(X,Y), E(Y,Z)\n\
         r :- E(U,V)\n\
         tri :- E(X,Y), E(Y,Z), E(Z,X)\n",
    )
    .unwrap();
    let mut voc = prog.voc.clone();
    let schema = omq::model::Schema::from_preds([voc.pred_id("E").unwrap()]);
    let cfg = ContainmentConfig::default();
    let get = |name: &str| {
        omq::model::Omq::new(schema.clone(), vec![], prog.query(name).unwrap().clone())
    };
    let (p, r, tri) = (get("p"), get("r"), get("tri"));
    for (a, b) in [(&p, &r), (&r, &p), (&tri, &p), (&p, &tri), (&tri, &r)] {
        let ours = contains(a, b, &mut voc, &cfg)
            .unwrap()
            .result
            .is_contained();
        let classical = omq::chase::ucq_contained(&a.query, &b.query);
        assert_eq!(ours, classical);
    }
}

/// UCQ→CQ compilation composes with containment: the compiled OMQ is
/// equivalent to the original.
#[test]
fn ucq_to_cq_preserves_containment_both_ways() {
    let prog = omq::model::parse_program(
        "A(X) -> P(X)\n\
         B(X) -> T(X)\n\
         q :- P(X)\n\
         q :- T(X)\n",
    )
    .unwrap();
    let mut voc = prog.voc.clone();
    let schema =
        omq::model::Schema::from_preds([voc.pred_id("A").unwrap(), voc.pred_id("B").unwrap()]);
    let q = omq::model::Omq::new(schema, prog.tgds.clone(), prog.query("q").unwrap().clone());
    let compiled = omq::rewrite::ucq_omq_to_cq_omq(&q, &mut voc).unwrap();
    let cfg = ContainmentConfig::default();
    // Forward direction through the full containment engine (the compiled
    // OMQ is the right-hand side, checked by chase evaluation).
    let fwd = contains(&q, &compiled, &mut voc, &cfg).unwrap();
    assert!(fwd.result.is_contained(), "{:?}", fwd.result);
    // Reverse direction via evaluation agreement: rewriting the compiled
    // OMQ is needlessly expensive (its auxiliary Or/True machinery blows up
    // the resolution search), so check Q'(D) ⊆ Q(D) on a databases sweep.
    for facts in [
        vec![],
        vec!["A(a)"],
        vec!["B(b)"],
        vec!["A(a)", "B(b)"],
        vec!["A(a)", "A(b)", "B(a)"],
    ] {
        let mut d = omq::model::Instance::new();
        for f in &facts {
            let t = omq::model::parse_tgd(&mut voc, &format!("true -> {f}")).unwrap();
            for a in t.head {
                d.insert(a);
            }
        }
        let a1 = omq::chase::certain_answers_via_chase(
            &q,
            &d,
            &mut voc,
            &omq::chase::ChaseConfig::default(),
        )
        .unwrap();
        let a2 = omq::chase::certain_answers_via_chase(
            &compiled,
            &d,
            &mut voc,
            &omq::chase::ChaseConfig::default(),
        )
        .unwrap();
        assert_eq!(a1, a2, "facts {facts:?}");
    }
}

/// Guarded evaluation agrees with rewriting-based evaluation on linear
/// OMQs (linear ⊆ guarded), across several databases.
#[test]
fn guarded_engine_agrees_with_rewriting_on_linear() {
    let prog = omq::model::parse_program(
        "P(X) -> exists Y . R(X,Y)\n\
         R(X,Y) -> P(Y)\n\
         T(X) -> P(X)\n\
         q(X) :- R(X,Y), P(Y)\n",
    )
    .unwrap();
    let mut voc = prog.voc.clone();
    let schema =
        omq::model::Schema::from_preds([voc.pred_id("P").unwrap(), voc.pred_id("T").unwrap()]);
    let q = omq::model::Omq::new(schema, prog.tgds.clone(), prog.query("q").unwrap().clone());
    for facts in [
        vec!["P(a)"],
        vec!["T(b)", "P(a)"],
        vec!["T(a)", "T(b)", "T(c)"],
        vec![],
    ] {
        let mut d = omq::model::Instance::new();
        for f in &facts {
            let t = omq::model::parse_tgd(&mut voc, &format!("true -> {f}")).unwrap();
            for a in t.head {
                d.insert(a);
            }
        }
        let via_rw =
            omq::rewrite::certain_answers_via_rewriting(&q, &d, &mut voc, &Default::default())
                .unwrap();
        let via_guarded = omq::guarded::guarded_certain_answers(
            &q,
            &d,
            &mut voc,
            &omq::guarded::GuardedConfig::default(),
        );
        assert_ne!(
            via_guarded.completeness,
            omq::guarded::Completeness::LowerBound
        );
        assert_eq!(via_rw, via_guarded.answers, "facts {facts:?}");
    }
}
